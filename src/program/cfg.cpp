#include "program/cfg.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_set>

#include "common/logging.hpp"
#include "isa/codec.hpp"

namespace rev::prog
{

using isa::Instr;
using isa::InstrClass;

namespace
{

TermKind
termKindOf(InstrClass c)
{
    switch (c) {
      case InstrClass::Branch:
        return TermKind::Branch;
      case InstrClass::Jump:
        return TermKind::Jump;
      case InstrClass::Call:
        return TermKind::Call;
      case InstrClass::CallIndirect:
        return TermKind::CallIndirect;
      case InstrClass::JumpIndirect:
        return TermKind::JumpIndirect;
      case InstrClass::Return:
        return TermKind::Return;
      case InstrClass::Halt:
        return TermKind::Halt;
      default:
        panic("termKindOf: not a control-flow class");
    }
}

} // namespace

const BasicBlock *
Cfg::blockAtStart(Addr start) const
{
    auto it = byStart_.find(start);
    return it == byStart_.end() ? nullptr : &blocks_[it->second];
}

std::vector<const BasicBlock *>
Cfg::blocksAtTerm(Addr term) const
{
    std::vector<const BasicBlock *> out;
    auto it = byTerm_.find(term);
    if (it != byTerm_.end())
        for (u32 id : it->second)
            out.push_back(&blocks_[id]);
    return out;
}

CfgStats
Cfg::stats() const
{
    CfgStats s;
    s.numBlocks = blocks_.size();
    s.numTerminators = byTerm_.size();
    u64 instrs = 0, succs = 0;
    std::set<Addr> seen_terms;
    for (const auto &bb : blocks_) {
        instrs += bb.numInstrs;
        succs += bb.succs.size();
        if (seen_terms.insert(bb.term).second) {
            ++s.numBranchInstrs;
            if (termIsComputed(bb.kind))
                ++s.numComputedSites;
        }
    }
    if (!blocks_.empty()) {
        s.avgInstrsPerBlock = static_cast<double>(instrs) / blocks_.size();
        s.avgSuccsPerBlock = static_cast<double>(succs) / blocks_.size();
    }
    return s;
}

Cfg
buildCfg(const Module &mod, const SplitLimits &limits)
{
    Cfg cfg;
    cfg.limits_ = limits;

    // ---- pass 1: linear decode of the code region -----------------------
    // The code region is contiguous, so flat offset-indexed arrays replace
    // tree searches on the per-instruction hot paths below.
    const std::size_t code_size = mod.codeSize;
    std::vector<Instr> instrs(code_size);
    std::vector<u8> is_instr(code_size, 0);
    {
        Addr pc = mod.base;
        while (pc < mod.codeEnd()) {
            const std::size_t off = pc - mod.base;
            auto ins = isa::decode(mod.image.data() + off,
                                   code_size - off);
            if (!ins)
                fatal("buildCfg: undecodable code in '", mod.name,
                      "' at offset ", off);
            instrs[off] = *ins;
            is_instr[off] = 1;
            pc += ins->length();
        }
    }

    auto instr_exists = [&](Addr a) {
        return a >= mod.base && a < mod.codeEnd() && is_instr[a - mod.base];
    };

    // ---- pass 2: leader discovery ---------------------------------------
    std::vector<u8> is_leader(code_size, 0);
    auto add_leader = [&](Addr a, const char *why) {
        if (!instr_exists(a))
            fatal("buildCfg: '", mod.name, "': ", why, " target 0x",
                  std::hex, a, " is not an instruction boundary");
        is_leader[a - mod.base] = 1;
    };

    if (mod.codeSize > 0)
        add_leader(mod.entry, "entry");

    for (std::size_t off = 0; off < code_size; ++off) {
        if (!is_instr[off])
            continue;
        const Addr pc = mod.base + off;
        const Instr &ins = instrs[off];
        switch (ins.klass()) {
          case InstrClass::Branch:
          case InstrClass::Jump:
          case InstrClass::Call:
            add_leader(ins.directTarget(pc), "direct branch");
            break;
          default:
            break;
        }
        if (ins.isControlFlow()) {
            const Addr ft = ins.fallThrough(pc);
            if (instr_exists(ft))
                is_leader[ft - mod.base] = 1;
        }
    }
    for (const auto &[site, targets] : mod.indirectTargets) {
        if (!instr_exists(site))
            fatal("buildCfg: '", mod.name, "': indirect annotation site 0x",
                  std::hex, site, " is not an instruction");
        for (Addr t : targets) {
            // Cross-module targets are resolved by the callee module's
            // own CFG; only intra-module targets become leaders here.
            if (t >= mod.base && t < mod.codeEnd())
                add_leader(t, "annotated indirect");
        }
    }

    // ---- pass 3: walk each leader to its terminator ----------------------
    // Walking may create artificial-split fall-through leaders; use a
    // worklist. Leaders seed it in ascending address order (block IDs — and
    // thus table layout — depend on it).
    std::deque<Addr> work;
    std::vector<u8> queued = is_leader;
    for (std::size_t off = 0; off < code_size; ++off)
        if (is_leader[off])
            work.push_back(mod.base + off);

    while (!work.empty()) {
        const Addr start = work.front();
        work.pop_front();
        if (cfg.byStart_.count(start))
            continue;

        BasicBlock bb;
        bb.id = static_cast<u32>(cfg.blocks_.size());
        bb.start = start;

        Addr pc = start;
        while (true) {
            if (!instr_exists(pc))
                fatal("buildCfg: '", mod.name, "': control falls off the ",
                      "end of code at 0x", std::hex, pc);
            const Instr &ins = instrs[pc - mod.base];
            ++bb.numInstrs;
            if (ins.writesMem())
                ++bb.numStores;

            if (ins.isControlFlow()) {
                bb.term = pc;
                bb.end = ins.fallThrough(pc);
                bb.kind = termKindOf(ins.klass());
                break;
            }
            if (bb.numInstrs >= limits.maxInstrs ||
                bb.numStores >= limits.maxStores) {
                bb.term = pc;
                bb.end = ins.fallThrough(pc);
                bb.kind = TermKind::Split;
                break;
            }
            pc = ins.fallThrough(pc);
        }

        if (bb.kind == TermKind::Split) {
            // A split's fall-through may sit past the code end; queue it
            // anyway so the walk reports the fall-off error.
            const bool in_code = bb.end >= mod.base && bb.end < mod.codeEnd();
            if (!in_code || !queued[bb.end - mod.base]) {
                if (in_code)
                    queued[bb.end - mod.base] = 1;
                work.push_back(bb.end);
            }
        }

        cfg.byStart_[start] = bb.id;
        cfg.byTerm_[bb.term].push_back(bb.id);
        cfg.blocks_.push_back(std::move(bb));
    }

    // ---- pass 4: successor sets per terminator ---------------------------
    // Successors are a property of the terminating instruction, shared by
    // every (suffix) block ending at it.
    std::map<Addr, std::vector<Addr>> term_succs;

    auto add_succ = [&](Addr term, Addr target) {
        auto &v = term_succs[term];
        if (std::find(v.begin(), v.end(), target) == v.end())
            v.push_back(target);
    };

    for (const auto &[term, ids] : cfg.byTerm_) {
        const BasicBlock &bb = cfg.blocks_[ids.front()];
        const Instr &ins = instrs[term - mod.base];
        switch (bb.kind) {
          case TermKind::Branch:
            add_succ(term, ins.directTarget(term));
            add_succ(term, bb.end);
            break;
          case TermKind::Jump:
          case TermKind::Call:
            add_succ(term, ins.directTarget(term));
            break;
          case TermKind::CallIndirect:
          case TermKind::JumpIndirect: {
            auto it = mod.indirectTargets.find(term);
            if (it != mod.indirectTargets.end())
                for (Addr t : it->second)
                    add_succ(term, t);
            break;
          }
          case TermKind::Split:
            add_succ(term, bb.end);
            break;
          case TermKind::Return:
          case TermKind::Halt:
            break; // returns handled below; halt has no successor
        }
    }

    // ---- finalize ---------------------------------------------------------
    for (auto &bb : cfg.blocks_) {
        auto sit = term_succs.find(bb.term);
        if (sit != term_succs.end())
            bb.succs = sit->second;
    }

    // Return-site analysis for this module in isolation; SigStore re-runs
    // it program-wide once every module's CFG exists.
    linkCfgs({&cfg});
    return cfg;
}

void
linkCfgs(const std::vector<Cfg *> &cfgs)
{
    // Global indices across all modules (module address ranges are
    // disjoint, so starts and terminators are unique program-wide).
    struct Ref
    {
        Cfg *cfg;
        u32 idx;
    };
    // Hash containers: every traversal below iterates blocks_/worklists,
    // never these indices, so edge order stays deterministic.
    std::unordered_map<Addr, Ref> by_start;
    std::unordered_map<Addr, std::vector<Ref>> by_term;

    for (Cfg *cfg : cfgs) {
        for (auto &bb : cfg->blocks_) {
            // Reset any previous return-edge information (idempotence).
            if (bb.kind == TermKind::Return)
                bb.succs.clear();
            bb.retPreds.clear();
        }
        for (const auto &[start, idx] : cfg->byStart_)
            by_start.emplace(start, Ref{cfg, idx});
        for (const auto &[term, ids] : cfg->byTerm_)
            for (u32 id : ids)
                by_term[term].push_back(Ref{cfg, id});
    }

    auto block_at = [&](Addr start) -> BasicBlock * {
        auto it = by_start.find(start);
        return it == by_start.end() ? nullptr
                                    : &it->second.cfg->blocks_[it->second.idx];
    };

    // RET instructions reachable intra-procedurally from a function entry,
    // following edges across modules.
    std::unordered_map<Addr, std::vector<Addr>> rets_of_entry;
    auto reachable_rets = [&](Addr entry) -> const std::vector<Addr> & {
        auto memo = rets_of_entry.find(entry);
        if (memo != rets_of_entry.end())
            return memo->second;

        std::vector<Addr> rets;
        std::unordered_set<Addr> visited;
        std::deque<Addr> bfs{entry};
        while (!bfs.empty()) {
            const Addr s = bfs.front();
            bfs.pop_front();
            if (!visited.insert(s).second)
                continue;
            const BasicBlock *bb = block_at(s);
            if (!bb)
                continue; // target outside every known module
            switch (bb->kind) {
              case TermKind::Return:
                rets.push_back(bb->term);
                break;
              case TermKind::Halt:
                break;
              case TermKind::Call:
              case TermKind::CallIndirect:
                // Intra-procedural flow resumes at the return site.
                bfs.push_back(bb->end);
                break;
              default:
                for (Addr t : bb->succs)
                    bfs.push_back(t);
                break;
            }
        }
        return rets_of_entry.emplace(entry, std::move(rets)).first->second;
    };

    // Visit every call site once (by terminator address).
    std::unordered_set<Addr> call_terms_seen;
    for (Cfg *cfg : cfgs) {
        for (const auto &bb : cfg->blocks_) {
            if (bb.kind != TermKind::Call &&
                bb.kind != TermKind::CallIndirect)
                continue;
            if (!call_terms_seen.insert(bb.term).second)
                continue;
            const Addr return_site = bb.end;
            BasicBlock *rb = block_at(return_site);
            if (!rb)
                continue;
            for (Addr entry : bb.succs) {
                for (Addr r : reachable_rets(entry)) {
                    // The RET may transfer to this call's return site.
                    for (const Ref &ref : by_term[r]) {
                        auto &succs = ref.cfg->blocks_[ref.idx].succs;
                        if (std::find(succs.begin(), succs.end(),
                                      return_site) == succs.end())
                            succs.push_back(return_site);
                    }
                    auto &preds = rb->retPreds;
                    if (std::find(preds.begin(), preds.end(), r) ==
                        preds.end())
                        preds.push_back(r);
                }
            }
        }
    }
}

} // namespace rev::prog
