/**
 * @file
 * Functional RVX machine: architectural registers, PC, and instruction
 * semantics over a SparseMemory image.
 *
 * Used three ways:
 *  - as the reference interpreter in tests,
 *  - by the profiler to discover computed-branch targets (Sec. IV.D),
 *  - embedded in the cycle-level core as the in-order oracle that supplies
 *    values and actual branch outcomes to the timing model.
 *
 * Stores may be redirected into a StoreBuffer instead of memory; this is
 * how the pipeline defers memory updates until REV validates the basic
 * block (Requirement R5). Loads transparently forward from the buffer.
 *
 * Instruction fetch goes through a DecodeCache: per-code-page arrays of
 * decoded instructions plus precomputed register usage, validated against
 * the page's write-version counter so that any store landing on a cached
 * code page (the machine's own stores, attack injectors, reloadProgram())
 * transparently forces a re-decode of the fresh bytes. The cache is purely
 * a functional-layer speedup — decode results are byte-exact and timing
 * statistics are computed identically with or without it.
 */

#ifndef REV_PROGRAM_INTERP_HPP
#define REV_PROGRAM_INTERP_HPP

#include <array>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/sparse_memory.hpp"
#include "isa/instr.hpp"
#include "isa/reguse.hpp"
#include "program/program.hpp"

namespace rev::prog
{

class TraceRecorder;
class TraceReplayer;

/**
 * Pending (not yet validated) stores, in program order. Loads forward from
 * the newest pending value per byte; drain() releases the oldest stores to
 * memory once their basic block has been authenticated.
 */
class StoreBuffer
{
  public:
    /** Queue a store of the low @p size bytes of @p value at @p addr. */
    void push(SeqNum seq, Addr addr, u64 value, unsigned size = 8);

    /** Read one byte as the machine would see it (buffer else memory). */
    u8 readByte(const SparseMemory &mem, Addr addr) const;

    /** True if any byte of the @p size-byte word at @p addr has a pending
     *  store (the load would forward from the store queue). */
    bool covers(Addr addr, unsigned size = 8) const;

    /** Read a 64-bit value with forwarding. */
    u64 read64(const SparseMemory &mem, Addr addr) const;

    /** Release all stores with seq <= @p upTo into @p mem, oldest first. */
    void drain(SparseMemory &mem, SeqNum upTo);

    /** Discard all stores with seq >= @p from (squash on violation). */
    void squash(SeqNum from);

    std::size_t size() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }

    /** Sequence number of the oldest pending store (0 if none). */
    SeqNum oldestSeq() const { return queue_.empty() ? 0 : queue_.front().seq; }

    /** Sequence number of the newest pending store covering any byte of
     *  the @p size-byte access at @p addr (0 when covers() is false). */
    SeqNum newestCoverSeq(Addr addr, unsigned size = 8) const;

  private:
    struct Pending
    {
        SeqNum seq;
        Addr addr;
        u64 value;
        unsigned size;
    };

    struct ByteView
    {
        u8 value;
        u32 refs; ///< pending stores covering this byte
    };

    void removeBytes(const Pending &p);
    void resetBounds();

    std::deque<Pending> queue_;
    std::unordered_map<Addr, ByteView> bytes_;

    // Conservative address bounds of the pending bytes: covers() rejects
    // non-overlapping loads with two compares instead of per-byte map
    // probes. Bounds only grow while stores are pending and reset when the
    // buffer empties; staleness is a missed fast path, never a wrong
    // answer (the byte map stays authoritative).
    Addr boundLo_ = kNoAddr;
    Addr boundHi_ = 0; ///< one past the highest pending byte
};

/** One predecoded static instruction. */
struct Predecoded
{
    isa::Instr ins;
    u8 len = 0;      ///< encoded length in bytes
    isa::RegUse use; ///< precomputed register operands
};

/**
 * Interpreter dispatch mode. Threaded (the default) executes through
 * superblock token runs — whole decoded basic blocks committed off one
 * cursor with a two-compare SMC guard per token — using a computed-goto
 * label table where the compiler supports it. Switch is the legacy
 * per-instruction decode-cache path. Both are bit-identical (pinned by
 * tests/program dispatch-equivalence tests); the mode is deliberately a
 * process-global knob, not a SimConfig field, so sweep-cache keys and
 * golden stats are dispatch-independent.
 */
enum class DispatchMode : u8
{
    Switch,
    Threaded,
};

/** Active mode: REV_DISPATCH env ("switch"/"threaded") else Threaded. */
DispatchMode dispatchMode();

/** Override the mode (CLI --dispatch; affects Machines built after). */
void setDispatchMode(DispatchMode mode);

/** "switch" or "threaded". */
const char *dispatchModeName(DispatchMode mode);

/**
 * A superblock: one basic block's instructions predecoded into a flat
 * token run. Built lazily per entry PC, bounded to one code page, ended
 * at the first control-flow instruction (inclusive), an undecodable or
 * page-crossing instruction (exclusive), or the token cap. Tagged with
 * the page's write-version so any store landing on the page — the
 * machine's own, a hook's, an attack injector's — invalidates the run.
 */
struct SuperBlock
{
    Addr start = 0;
    u64 pageNo = 0;
    u64 version = 0;                  ///< page version at build
    const u64 *liveVersion = nullptr; ///< live counter for the SMC guard
    std::vector<Predecoded> tokens;
};

/**
 * Per-code-page cache of decoded instructions keyed by PC, validated
 * against SparseMemory page versions (plus the memory epoch for wholesale
 * page-set replacement, e.g. the page-shadowing rollback). Entries whose
 * bytes spill into the next page are decoded on demand and never cached,
 * so a write to *any* byte of an instruction always invalidates it.
 */
class DecodeCache
{
  public:
    /**
     * Decoded instruction at @p pc, or nullptr when the bytes do not
     * decode. The pointer is valid until the next lookup() or clear().
     */
    const Predecoded *lookup(const SparseMemory &mem, Addr pc);

    /** Drop everything (tests / explicit resets). */
    void clear();

    /**
     * Superblock starting at @p pc, building (or rebuilding, when its
     * page version moved) on demand. Returns nullptr when the first
     * instruction is undecodable, page-crossing, or on an unpopulated
     * page — the caller falls back to the per-instruction slow path.
     * The pointer stays valid until clear() (map nodes are stable).
     */
    const SuperBlock *superblockAt(const SparseMemory &mem, Addr pc);

    /** Token cap per superblock (bounds rebuild cost after SMC). */
    static constexpr unsigned kMaxSuperBlockTokens = 128;

    /** Every page number the decoder has read deciding bytes from since
     *  the last clear() (includes spill pages of page-crossing
     *  instructions). Input to the trace recorder's SMC verdict. */
    std::vector<u64> touchedPages() const;

  private:
    enum : u8
    {
        kUnknown = 0,
        kValid = 1,
        kInvalid = 2, ///< bytes at this offset do not decode
    };

    struct CodePage
    {
        u64 version = 0;             ///< page version the slots were filled at
        SparseMemory::PageView view; ///< live version pointer for revalidation
        std::vector<Predecoded> slots;
        std::vector<u8> state;
    };

    CodePage &pageFor(const SparseMemory &mem, u64 page_no);

    std::unordered_map<u64, CodePage> pages_;
    std::unordered_map<Addr, SuperBlock> sblocks_; ///< keyed by entry pc
    u64 lastPageNo_ = kNoAddr;
    CodePage *lastPage_ = nullptr;
    u64 memEpoch_ = ~u64{0};
    Predecoded spanning_; ///< scratch slot for page-crossing instructions
    std::vector<u64> spanPages_; ///< spill pages of page-crossing instrs
};

/**
 * Result of executing one instruction.
 */
struct ExecRecord
{
    Addr pc = 0;
    isa::Instr ins;
    isa::RegUse use; ///< register operands (from the decode cache)
    Addr nextPc = 0;
    bool taken = false;   ///< conditional branch outcome
    bool isLoad = false;  ///< load or RET pop
    bool isStore = false; ///< store or CALL push
    Addr memAddr = 0;
    unsigned memSize = 8; ///< access width in bytes
    u64 storeValue = 0;
    u64 loadValue = 0;
    u64 coverDist = 0; ///< seq - covering store seq when the load forwarded
                       ///< from the store queue (0 otherwise)
    bool halted = false;
    bool invalid = false; ///< undecodable bytes at pc
    u8 syscallNo = 0;
    bool isSyscall = false;
};

/**
 * The architectural machine.
 */
class Machine
{
  public:
    /** Construct with PC at the program entry and SP at the stack top. */
    Machine(const Program &program, SparseMemory &mem);

    /**
     * Execute the instruction at the current PC. If @p sb is non-null,
     * stores go to the buffer (tagged @p seq) instead of memory, and loads
     * forward from it.
     */
    ExecRecord step(StoreBuffer *sb = nullptr, SeqNum seq = 0);

    /**
     * Decode (through the cache) the instruction at @p pc without
     * executing it; nullptr when the bytes do not decode. Used by the
     * core's wrong-path fetch modeling.
     */
    const Predecoded *predecode(Addr pc) { return dcache_.lookup(mem_, pc); }

    u64 reg(unsigned idx) const { return regs_[idx]; }
    void setReg(unsigned idx, u64 v) { if (idx != 0) regs_[idx] = v; }

    /** Architectural register file (snapshot capture). */
    const std::array<u64, isa::kNumArchRegs> &regs() const { return regs_; }

    /**
     * Adopt architectural state captured from another Machine running the
     * same program image (snapshot fork / restore). Drops the superblock
     * cursor; decode-cache warmth is architecturally invisible, so the
     * fork re-attaches lazily on its first threaded step.
     */
    void
    restoreArch(const std::array<u64, isa::kNumArchRegs> &regs, Addr pc,
                bool halted)
    {
        regs_ = regs;
        pc_ = pc;
        halted_ = halted;
        sbCur_ = nullptr;
    }

    Addr pc() const { return pc_; }
    void setPc(Addr pc) { pc_ = pc; halted_ = false; }

    bool halted() const { return halted_; }

    SparseMemory &memory() { return mem_; }
    const SparseMemory &memory() const { return mem_; }

    /** Attach a recorder: every committed step() is appended to it. */
    void attachRecorder(TraceRecorder *rec) { recorder_ = rec; }

    /**
     * Attach a replayer: step() re-derives each ExecRecord from the trace
     * plus the decode cache instead of executing semantics. Registers and
     * data memory are NOT maintained while replaying; only the fields the
     * timing model consumes are populated.
     */
    void attachReplayer(TraceReplayer *rep) { replayer_ = rep; }

    /** Abandon replay (e.g. a PreStepHook wants to mutate state). Only
     *  legal before the first replayed step — see Core::run(). */
    void cancelReplay() { replayer_ = nullptr; }

    bool replaying() const { return replayer_ != nullptr; }

    /** Instructions consumed from the attached replayer (0 if none). */
    u64 replayConsumed() const;

    /** Pages the decoder has read deciding bytes from (trace SMC check). */
    std::vector<u64> decodePages() const { return dcache_.touchedPages(); }

  private:
    ExecRecord replayStep();

    /** Per-instruction decode-cache path (DispatchMode::Switch, and the
     *  fallback for undecodable / page-crossing / unpopulated cases). */
    ExecRecord stepSlow(StoreBuffer *sb, SeqNum seq);

    /** Superblock-cursor path (DispatchMode::Threaded). */
    ExecRecord stepThreaded(StoreBuffer *sb, SeqNum seq);

    /**
     * Attach or revalidate the superblock cursor at the current PC.
     * Returns false when no superblock covers pc_ (caller uses the slow
     * path). Checks, in order: memory epoch (the token storage may have
     * been dropped wholesale), cursor continuity (pc_ must be the next
     * token's address — setPc() and replay divergence break it), token
     * bounds, and the page's live write-version (the per-block SMC
     * guard; re-checked per committed token because hooks and store
     * drains can land on the page mid-block).
     */
    bool cursorReady();

    /** Execute one decoded instruction (shared semantic switch). */
    void execIns(const isa::Instr &ins, unsigned len, ExecRecord &rec,
                 StoreBuffer *sb, SeqNum seq);

    /** Same semantics through the token label table (computed goto where
     *  supported, identical switch otherwise). */
    void execToken(const isa::Instr &ins, unsigned len, ExecRecord &rec,
                   StoreBuffer *sb, SeqNum seq);

    /** Re-derive one record's trace events (shared by replay paths). */
    void replayExec(const isa::Instr &ins, ExecRecord &rec);

    std::array<u64, isa::kNumArchRegs> regs_{};
    Addr pc_;
    bool halted_ = false;
    SparseMemory &mem_;
    DecodeCache dcache_;
    TraceRecorder *recorder_ = nullptr;
    TraceReplayer *replayer_ = nullptr;

    DispatchMode dispatch_ = DispatchMode::Threaded;
    const SuperBlock *sbCur_ = nullptr; ///< superblock cursor (threaded)
    unsigned sbIdx_ = 0;                ///< next token to commit
    Addr sbNextPc_ = 0;                 ///< pc the next token must match
    u64 sbEpoch_ = ~u64{0};             ///< memory epoch at attach
};

/**
 * Run @p machine to completion (or @p max_instrs) and return the number of
 * instructions executed. Convenience for tests and the profiler.
 */
u64 runToHalt(Machine &machine, u64 max_instrs = 100'000'000);

} // namespace rev::prog

#endif // REV_PROGRAM_INTERP_HPP
