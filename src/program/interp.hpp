/**
 * @file
 * Functional RVX machine: architectural registers, PC, and instruction
 * semantics over a SparseMemory image.
 *
 * Used three ways:
 *  - as the reference interpreter in tests,
 *  - by the profiler to discover computed-branch targets (Sec. IV.D),
 *  - embedded in the cycle-level core as the in-order oracle that supplies
 *    values and actual branch outcomes to the timing model.
 *
 * Stores may be redirected into a StoreBuffer instead of memory; this is
 * how the pipeline defers memory updates until REV validates the basic
 * block (Requirement R5). Loads transparently forward from the buffer.
 */

#ifndef REV_PROGRAM_INTERP_HPP
#define REV_PROGRAM_INTERP_HPP

#include <array>
#include <deque>
#include <unordered_map>

#include "common/sparse_memory.hpp"
#include "isa/instr.hpp"
#include "program/program.hpp"

namespace rev::prog
{

/**
 * Pending (not yet validated) stores, in program order. Loads forward from
 * the newest pending value per byte; drain() releases the oldest stores to
 * memory once their basic block has been authenticated.
 */
class StoreBuffer
{
  public:
    /** Queue a store of the low @p size bytes of @p value at @p addr. */
    void push(SeqNum seq, Addr addr, u64 value, unsigned size = 8);

    /** Read one byte as the machine would see it (buffer else memory). */
    u8 readByte(const SparseMemory &mem, Addr addr) const;

    /** True if any byte of the @p size-byte word at @p addr has a pending
     *  store (the load would forward from the store queue). */
    bool covers(Addr addr, unsigned size = 8) const;

    /** Read a 64-bit value with forwarding. */
    u64 read64(const SparseMemory &mem, Addr addr) const;

    /** Release all stores with seq <= @p upTo into @p mem, oldest first. */
    void drain(SparseMemory &mem, SeqNum upTo);

    /** Discard all stores with seq >= @p from (squash on violation). */
    void squash(SeqNum from);

    std::size_t size() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }

    /** Sequence number of the oldest pending store (0 if none). */
    SeqNum oldestSeq() const { return queue_.empty() ? 0 : queue_.front().seq; }

  private:
    struct Pending
    {
        SeqNum seq;
        Addr addr;
        u64 value;
        unsigned size;
    };

    struct ByteView
    {
        u8 value;
        u32 refs; ///< pending stores covering this byte
    };

    void removeBytes(const Pending &p);

    std::deque<Pending> queue_;
    std::unordered_map<Addr, ByteView> bytes_;
};

/**
 * Result of executing one instruction.
 */
struct ExecRecord
{
    Addr pc = 0;
    isa::Instr ins;
    Addr nextPc = 0;
    bool taken = false;   ///< conditional branch outcome
    bool isLoad = false;  ///< load or RET pop
    bool isStore = false; ///< store or CALL push
    Addr memAddr = 0;
    unsigned memSize = 8; ///< access width in bytes
    u64 storeValue = 0;
    u64 loadValue = 0;
    bool halted = false;
    bool invalid = false; ///< undecodable bytes at pc
    u8 syscallNo = 0;
    bool isSyscall = false;
};

/**
 * The architectural machine.
 */
class Machine
{
  public:
    /** Construct with PC at the program entry and SP at the stack top. */
    Machine(const Program &program, SparseMemory &mem);

    /**
     * Execute the instruction at the current PC. If @p sb is non-null,
     * stores go to the buffer (tagged @p seq) instead of memory, and loads
     * forward from it.
     */
    ExecRecord step(StoreBuffer *sb = nullptr, SeqNum seq = 0);

    u64 reg(unsigned idx) const { return regs_[idx]; }
    void setReg(unsigned idx, u64 v) { if (idx != 0) regs_[idx] = v; }

    Addr pc() const { return pc_; }
    void setPc(Addr pc) { pc_ = pc; halted_ = false; }

    bool halted() const { return halted_; }

    SparseMemory &memory() { return mem_; }
    const SparseMemory &memory() const { return mem_; }

  private:
    u64 readMem64(const StoreBuffer *sb, Addr addr) const;

    std::array<u64, isa::kNumArchRegs> regs_{};
    Addr pc_;
    bool halted_ = false;
    SparseMemory &mem_;
};

/**
 * Run @p machine to completion (or @p max_instrs) and return the number of
 * instructions executed. Convenience for tests and the profiler.
 */
u64 runToHalt(Machine &machine, u64 max_instrs = 100'000'000);

} // namespace rev::prog

#endif // REV_PROGRAM_INTERP_HPP
