#include "program/assembler.hpp"

#include "common/logging.hpp"
#include "isa/codec.hpp"

namespace rev::prog
{

using isa::Instr;
using isa::Opcode;

Assembler::Assembler(Addr base) : base_(base)
{
}

void
Assembler::label(const std::string &name)
{
    if (symbols_.count(name))
        fatal("assembler: duplicate label '", name, "'");
    symbols_[name] = here();
}

Addr
Assembler::emit(const Instr &ins)
{
    if (inData_)
        fatal("assembler: instruction emitted after beginData()");
    const Addr addr = here();
    isa::encode(ins, image_);
    codeSize_ = image_.size();
    return addr;
}

// clang-format off
Addr Assembler::nop() { return emit({.op = Opcode::Nop}); }
Addr Assembler::halt() { return emit({.op = Opcode::Halt}); }
Addr Assembler::ret() { return emit({.op = Opcode::Ret}); }

Addr
Assembler::syscall(u8 service)
{
    return emit({.op = Opcode::Syscall, .imm = service});
}

#define REV_ASM_R3(fn, opc)                                                 \
    Addr Assembler::fn(u8 rd, u8 rs1, u8 rs2)                               \
    {                                                                       \
        return emit({.op = Opcode::opc, .rd = rd, .rs1 = rs1, .rs2 = rs2}); \
    }

REV_ASM_R3(add, Add)
REV_ASM_R3(sub, Sub)
REV_ASM_R3(mul, Mul)
REV_ASM_R3(divu, Divu)
REV_ASM_R3(and_, And)
REV_ASM_R3(or_, Or)
REV_ASM_R3(xor_, Xor)
REV_ASM_R3(shl, Shl)
REV_ASM_R3(shr, Shr)
REV_ASM_R3(slt, Slt)
REV_ASM_R3(sltu, Sltu)
REV_ASM_R3(fadd, Fadd)
REV_ASM_R3(fsub, Fsub)
REV_ASM_R3(fmul, Fmul)
REV_ASM_R3(fdiv, Fdiv)
#undef REV_ASM_R3

Addr Assembler::movi(u8 rd, i32 imm) { return emit({.op = Opcode::Movi, .rd = rd, .imm = imm}); }
Addr Assembler::lui(u8 rd, i32 imm) { return emit({.op = Opcode::Lui, .rd = rd, .imm = imm}); }

#define REV_ASM_RI(fn, opc)                                                 \
    Addr Assembler::fn(u8 rd, u8 rs1, i32 imm)                              \
    {                                                                       \
        return emit({.op = Opcode::opc, .rd = rd, .rs1 = rs1, .imm = imm}); \
    }

REV_ASM_RI(addi, Addi)
REV_ASM_RI(andi, Andi)
REV_ASM_RI(ori, Ori)
REV_ASM_RI(xori, Xori)
REV_ASM_RI(shli, Shli)
REV_ASM_RI(shri, Shri)
REV_ASM_RI(slti, Slti)
REV_ASM_RI(muli, Muli)
#undef REV_ASM_RI
// clang-format on

Addr
Assembler::ld(u8 rd, u8 base, i32 off)
{
    return emit({.op = Opcode::Ld, .rd = rd, .rs1 = base, .imm = off});
}

Addr
Assembler::st(u8 rs, u8 base, i32 off)
{
    return emit({.op = Opcode::St, .rd = rs, .rs1 = base, .imm = off});
}

Addr
Assembler::lb(u8 rd, u8 base, i32 off)
{
    return emit({.op = Opcode::Lb, .rd = rd, .rs1 = base, .imm = off});
}

Addr
Assembler::sb(u8 rs, u8 base, i32 off)
{
    return emit({.op = Opcode::Sb, .rd = rs, .rs1 = base, .imm = off});
}

Addr
Assembler::lw(u8 rd, u8 base, i32 off)
{
    return emit({.op = Opcode::Lw, .rd = rd, .rs1 = base, .imm = off});
}

Addr
Assembler::sw(u8 rs, u8 base, i32 off)
{
    return emit({.op = Opcode::Sw, .rd = rs, .rs1 = base, .imm = off});
}

Addr
Assembler::jmp(const std::string &target)
{
    const Addr addr = emit({.op = Opcode::Jmp});
    fixups_.push_back({FixupKind::PcRel32,
                       static_cast<std::size_t>(addr - base_) + 1, addr,
                       target});
    return addr;
}

Addr
Assembler::call(const std::string &target)
{
    const Addr addr = emit({.op = Opcode::Call});
    fixups_.push_back({FixupKind::PcRel32,
                       static_cast<std::size_t>(addr - base_) + 1, addr,
                       target});
    return addr;
}

Addr
Assembler::callr(u8 rs)
{
    return emit({.op = Opcode::CallR, .rs1 = rs});
}

Addr
Assembler::jmpr(u8 rs)
{
    return emit({.op = Opcode::JmpR, .rs1 = rs});
}

Addr
Assembler::emitBranch(Opcode op, u8 rs1, u8 rs2, const std::string &target)
{
    const Addr addr = emit({.op = op, .rs1 = rs1, .rs2 = rs2});
    fixups_.push_back({FixupKind::PcRel32,
                       static_cast<std::size_t>(addr - base_) + 3, addr,
                       target});
    return addr;
}

// clang-format off
Addr Assembler::beq(u8 a, u8 b, const std::string &t) { return emitBranch(Opcode::Beq, a, b, t); }
Addr Assembler::bne(u8 a, u8 b, const std::string &t) { return emitBranch(Opcode::Bne, a, b, t); }
Addr Assembler::blt(u8 a, u8 b, const std::string &t) { return emitBranch(Opcode::Blt, a, b, t); }
Addr Assembler::bge(u8 a, u8 b, const std::string &t) { return emitBranch(Opcode::Bge, a, b, t); }
Addr Assembler::bltu(u8 a, u8 b, const std::string &t) { return emitBranch(Opcode::Bltu, a, b, t); }
// clang-format on

Addr
Assembler::la(u8 rd, const std::string &target)
{
    // lui rd, hi32; ori rd, rd, lo32 -- patched as a pair in finalize().
    const Addr addr = emit({.op = Opcode::Lui, .rd = rd});
    emit({.op = Opcode::Ori, .rd = rd, .rs1 = rd});
    fixups_.push_back({FixupKind::AbsHiLo,
                       static_cast<std::size_t>(addr - base_), addr, target});
    return addr;
}

void
Assembler::beginData()
{
    inData_ = true;
}

void
Assembler::word64(u64 value)
{
    inData_ = true;
    for (int i = 0; i < 8; ++i)
        image_.push_back(static_cast<u8>(value >> (8 * i)));
}

void
Assembler::word64Label(const std::string &target)
{
    inData_ = true;
    const std::size_t off = image_.size();
    word64(0);
    fixups_.push_back({FixupKind::Abs64, off, base_ + off, target});
}

void
Assembler::zeros(std::size_t count)
{
    inData_ = true;
    image_.insert(image_.end(), count, 0);
}

void
Assembler::align(unsigned alignment)
{
    while (image_.size() % alignment != 0) {
        if (inData_)
            image_.push_back(0);
        else
            nop();
    }
}

void
Assembler::annotateIndirect(Addr site, std::vector<std::string> targets)
{
    indirect_.emplace_back(site, std::move(targets));
}

Module
Assembler::finalize(const std::string &name, const std::string &entry_label)
{
    auto resolve = [&](const std::string &label) -> Addr {
        auto it = symbols_.find(label);
        if (it == symbols_.end())
            fatal("assembler: undefined label '", label, "' in module '",
                  name, "'");
        return it->second;
    };

    for (const auto &fix : fixups_) {
        const Addr target = resolve(fix.target);
        switch (fix.kind) {
          case FixupKind::PcRel32: {
            const i64 delta =
                static_cast<i64>(target) - static_cast<i64>(fix.instrAddr);
            if (delta < INT32_MIN || delta > INT32_MAX)
                fatal("assembler: branch to '", fix.target, "' out of range");
            const u32 v = static_cast<u32>(static_cast<i32>(delta));
            for (int i = 0; i < 4; ++i)
                image_[fix.offset + i] = static_cast<u8>(v >> (8 * i));
            break;
          }
          case FixupKind::Abs64:
            for (int i = 0; i < 8; ++i)
                image_[fix.offset + i] = static_cast<u8>(target >> (8 * i));
            break;
          case FixupKind::AbsHiLo: {
            // Patch the imm32 of the LUI (offset+2) and the following ORI
            // (offset + 6 + 3). LUI shifts its immediate by 32.
            const u32 hi = static_cast<u32>(target >> 32);
            const u32 lo = static_cast<u32>(target);
            for (int i = 0; i < 4; ++i) {
                image_[fix.offset + 2 + i] = static_cast<u8>(hi >> (8 * i));
                image_[fix.offset + 6 + 3 + i] =
                    static_cast<u8>(lo >> (8 * i));
            }
            break;
          }
        }
    }

    Module mod;
    mod.name = name;
    mod.base = base_;
    mod.image = image_;
    mod.codeSize = codeSize_;
    mod.symbols = symbols_;
    mod.entry = entry_label.empty() ? base_ : resolve(entry_label);
    for (const auto &[site, labels] : indirect_) {
        auto &targets = mod.indirectTargets[site];
        for (const auto &label : labels)
            targets.push_back(resolve(label));
    }
    return mod;
}

} // namespace rev::prog
