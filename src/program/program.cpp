#include "program/program.hpp"

#include "common/bitutil.hpp"
#include "common/logging.hpp"

namespace rev::prog
{

Addr
Program::nextModuleBase() const
{
    Addr next = kDefaultCodeBase;
    for (const auto &mod : modules_)
        next = std::max(next, roundUp(mod.imageEnd() + kModuleGap, 0x1000));
    return next;
}

const Module *
Program::findModule(Addr addr) const
{
    for (const auto &mod : modules_)
        if (mod.containsAddr(addr))
            return &mod;
    return nullptr;
}

void
Program::loadInto(SparseMemory &mem) const
{
    if (modules_.empty())
        fatal("Program::loadInto: no modules");
    for (const auto &mod : modules_)
        mem.writeBytes(mod.base, mod.image);
}

} // namespace rev::prog
