/**
 * @file
 * Profiling-run discovery of computed-branch targets (Sec. IV.D).
 *
 * REV needs an a-priori list of legitimate targets for every computed
 * transfer. The paper uses static analysis plus profiling runs; our
 * assembler annotations play the static-analysis role and this profiler
 * plays the profiling-run role: it executes the program functionally and
 * records every (site -> target) pair observed, which can then be merged
 * back into the modules' annotations.
 */

#ifndef REV_PROGRAM_PROFILER_HPP
#define REV_PROGRAM_PROFILER_HPP

#include <map>
#include <set>

#include "program/interp.hpp"
#include "program/program.hpp"

namespace rev::prog
{

/** Observed dynamic behaviour of one profiling run. */
struct Profile
{
    /** site address -> set of observed targets (CALLR/JMPR/RET sites). */
    std::map<Addr, std::set<Addr>> indirectTargets;

    u64 instrCount = 0;
    u64 branchCount = 0; ///< committed control-flow instructions
    bool halted = false;
};

/**
 * Run @p program functionally for at most @p max_instrs and collect a
 * Profile. The program image is loaded into a private memory.
 */
Profile profileRun(const Program &program, u64 max_instrs = 50'000'000);

/**
 * Merge profiled targets of CALLR/JMPR sites into each module's
 * indirectTargets annotations (union with any static annotations).
 */
void applyProfile(Program &program, const Profile &profile);

} // namespace rev::prog

#endif // REV_PROGRAM_PROFILER_HPP
