/**
 * @file
 * A Program: the set of modules sharing one address space, plus the
 * stack/heap layout. Mirrors the process image REV validates.
 */

#ifndef REV_PROGRAM_PROGRAM_HPP
#define REV_PROGRAM_PROGRAM_HPP

#include <vector>

#include "common/sparse_memory.hpp"
#include "program/module.hpp"

namespace rev::prog
{

/** Default load address of the first module. */
inline constexpr Addr kDefaultCodeBase = 0x10000;

/** Guard gap between consecutive modules. */
inline constexpr Addr kModuleGap = 0x1000;

/**
 * Address-space map (all regions disjoint):
 *   [kDefaultCodeBase ..)          module images (code + data), < 16 MB
 *   [kHeapBase .. kHeapBase+256MB) scratch heap for workload data
 *   [kStackTop - kStackSize ..)    downward-growing stack
 *   [sig::kSigTableRegion ..)      encrypted signature tables
 */

/** Top of the downward-growing stack. */
inline constexpr Addr kStackTop = 0x18000000;

/** Size reserved for the stack. */
inline constexpr Addr kStackSize = 0x100000;

/** Base of the scratch heap region programs may use freely (256 MB). */
inline constexpr Addr kHeapBase = 0x4000000;

/**
 * A multi-module program.
 */
class Program
{
  public:
    /** Add a module (already linked at its base). Module 0 is "main". */
    void addModule(Module mod) { modules_.push_back(std::move(mod)); }

    /** Next free base address for linking another module. */
    Addr nextModuleBase() const;

    const std::vector<Module> &modules() const { return modules_; }
    std::vector<Module> &modules() { return modules_; }

    const Module &main() const { return modules_.front(); }

    /** Module containing @p addr in its image, or nullptr. */
    const Module *findModule(Addr addr) const;

    /** Entry point of the main module. */
    Addr entry() const { return main().entry; }

    /** Initial stack pointer value. */
    static Addr initialSp() { return kStackTop; }

    /** Copy all module images into @p mem. */
    void loadInto(SparseMemory &mem) const;

  private:
    std::vector<Module> modules_;
};

} // namespace rev::prog

#endif // REV_PROGRAM_PROGRAM_HPP
