#include "program/module.hpp"

#include "common/logging.hpp"

namespace rev::prog
{

Addr
Module::symbol(const std::string &label) const
{
    auto it = symbols.find(label);
    if (it == symbols.end())
        fatal("module '", name, "': undefined symbol '", label, "'");
    return it->second;
}

} // namespace rev::prog
