/**
 * @file
 * Label-based RVX assembler producing linked Modules.
 *
 * This stands in for the trusted toolchain of the paper: it produces the
 * binary image, the symbol table, and the computed-branch target
 * annotations that the signature-table builder consumes.
 */

#ifndef REV_PROGRAM_ASSEMBLER_HPP
#define REV_PROGRAM_ASSEMBLER_HPP

#include <map>
#include <string>
#include <vector>

#include "isa/instr.hpp"
#include "program/module.hpp"

namespace rev::prog
{

/**
 * Two-pass assembler. Emit instructions and data with emit*()/label();
 * label references are fixed up in finalize().
 */
class Assembler
{
  public:
    /** @param base Absolute load address of the module being assembled. */
    explicit Assembler(Addr base);

    /** Define @p name at the current emission point. */
    void label(const std::string &name);

    /** Current absolute emission address. */
    Addr here() const { return base_ + image_.size(); }

    // --- instruction emitters; each returns the instruction's address ---

    Addr nop();
    Addr halt();
    Addr ret();
    Addr syscall(u8 service);

    Addr add(u8 rd, u8 rs1, u8 rs2);
    Addr sub(u8 rd, u8 rs1, u8 rs2);
    Addr mul(u8 rd, u8 rs1, u8 rs2);
    Addr divu(u8 rd, u8 rs1, u8 rs2);
    Addr and_(u8 rd, u8 rs1, u8 rs2);
    Addr or_(u8 rd, u8 rs1, u8 rs2);
    Addr xor_(u8 rd, u8 rs1, u8 rs2);
    Addr shl(u8 rd, u8 rs1, u8 rs2);
    Addr shr(u8 rd, u8 rs1, u8 rs2);
    Addr slt(u8 rd, u8 rs1, u8 rs2);
    Addr sltu(u8 rd, u8 rs1, u8 rs2);
    Addr fadd(u8 rd, u8 rs1, u8 rs2);
    Addr fsub(u8 rd, u8 rs1, u8 rs2);
    Addr fmul(u8 rd, u8 rs1, u8 rs2);
    Addr fdiv(u8 rd, u8 rs1, u8 rs2);

    Addr movi(u8 rd, i32 imm);
    Addr lui(u8 rd, i32 imm);

    Addr addi(u8 rd, u8 rs1, i32 imm);
    Addr andi(u8 rd, u8 rs1, i32 imm);
    Addr ori(u8 rd, u8 rs1, i32 imm);
    Addr xori(u8 rd, u8 rs1, i32 imm);
    Addr shli(u8 rd, u8 rs1, i32 imm);
    Addr shri(u8 rd, u8 rs1, i32 imm);
    Addr slti(u8 rd, u8 rs1, i32 imm);
    Addr muli(u8 rd, u8 rs1, i32 imm);

    Addr ld(u8 rd, u8 base, i32 off);
    Addr st(u8 rs, u8 base, i32 off);
    Addr lb(u8 rd, u8 base, i32 off);
    Addr sb(u8 rs, u8 base, i32 off);
    Addr lw(u8 rd, u8 base, i32 off);
    Addr sw(u8 rs, u8 base, i32 off);

    Addr jmp(const std::string &target);
    Addr call(const std::string &target);
    Addr callr(u8 rs);
    Addr jmpr(u8 rs);

    Addr beq(u8 rs1, u8 rs2, const std::string &target);
    Addr bne(u8 rs1, u8 rs2, const std::string &target);
    Addr blt(u8 rs1, u8 rs2, const std::string &target);
    Addr bge(u8 rs1, u8 rs2, const std::string &target);
    Addr bltu(u8 rs1, u8 rs2, const std::string &target);

    /** Load the absolute address of @p target into @p rd (movi+lui pair). */
    Addr la(u8 rd, const std::string &target);

    // --- data emission ---

    /** Mark the end of the code region; data follows. */
    void beginData();

    /** Emit a raw 64-bit little-endian word. */
    void word64(u64 value);

    /** Emit the absolute address of @p target as a 64-bit word. */
    void word64Label(const std::string &target);

    /** Emit @p count zero bytes. */
    void zeros(std::size_t count);

    /** Align the emission point to @p alignment bytes (power of two). */
    void align(unsigned alignment);

    // --- computed-branch metadata ---

    /**
     * Declare that the computed transfer at @p site may target the given
     * labels. Resolved to addresses in finalize().
     */
    void annotateIndirect(Addr site, std::vector<std::string> targets);

    /** Resolve fixups and produce the linked module. */
    Module finalize(const std::string &name, const std::string &entry_label);

  private:
    enum class FixupKind { PcRel32, Abs64, AbsHiLo };

    struct Fixup
    {
        FixupKind kind;
        std::size_t offset; ///< image offset of the field to patch
        Addr instrAddr;     ///< address of the referencing instruction
        std::string target;
    };

    Addr emit(const isa::Instr &ins);
    Addr emitBranch(isa::Opcode op, u8 rs1, u8 rs2, const std::string &tgt);

    Addr base_;
    std::vector<u8> image_;
    std::size_t codeSize_ = 0;
    bool inData_ = false;
    std::map<std::string, Addr> symbols_;
    std::vector<Fixup> fixups_;
    std::vector<std::pair<Addr, std::vector<std::string>>> indirect_;
};

} // namespace rev::prog

#endif // REV_PROGRAM_ASSEMBLER_HPP
