#include "program/interp.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"
#include "isa/codec.hpp"
#include "program/trace.hpp"

namespace rev::prog
{

using isa::Instr;
using isa::Opcode;

// ---------------------------------------------------------------------------
// Dispatch mode
// ---------------------------------------------------------------------------

namespace
{

DispatchMode
initialDispatchMode()
{
    if (const char *env = std::getenv("REV_DISPATCH")) {
        if (std::strcmp(env, "switch") == 0)
            return DispatchMode::Switch;
        if (std::strcmp(env, "threaded") == 0)
            return DispatchMode::Threaded;
        if (*env)
            warn("REV_DISPATCH: unknown mode '", env, "', using threaded");
    }
    return DispatchMode::Threaded;
}

DispatchMode g_dispatch = initialDispatchMode();

} // namespace

DispatchMode
dispatchMode()
{
    return g_dispatch;
}

void
setDispatchMode(DispatchMode mode)
{
    g_dispatch = mode;
}

const char *
dispatchModeName(DispatchMode mode)
{
    return mode == DispatchMode::Switch ? "switch" : "threaded";
}

// ---------------------------------------------------------------------------
// StoreBuffer
// ---------------------------------------------------------------------------

void
StoreBuffer::push(SeqNum seq, Addr addr, u64 value, unsigned size)
{
    REV_ASSERT(queue_.empty() || queue_.back().seq <= seq,
               "StoreBuffer: out-of-order push");
    queue_.push_back({seq, addr, value, size});
    for (unsigned i = 0; i < size; ++i) {
        auto &bv = bytes_[addr + i];
        bv.value = static_cast<u8>(value >> (8 * i));
        ++bv.refs;
    }
    boundLo_ = std::min(boundLo_, addr);
    boundHi_ = std::max(boundHi_, addr + size);
}

void
StoreBuffer::resetBounds()
{
    if (bytes_.empty()) {
        boundLo_ = kNoAddr;
        boundHi_ = 0;
    }
}

u8
StoreBuffer::readByte(const SparseMemory &mem, Addr addr) const
{
    if (bytes_.empty() || addr < boundLo_ || addr >= boundHi_)
        return mem.read8(addr);
    auto it = bytes_.find(addr);
    return it != bytes_.end() ? it->second.value : mem.read8(addr);
}

bool
StoreBuffer::covers(Addr addr, unsigned size) const
{
    if (bytes_.empty() || addr + size <= boundLo_ || addr >= boundHi_)
        return false;
    for (unsigned i = 0; i < size; ++i)
        if (bytes_.count(addr + i))
            return true;
    return false;
}

SeqNum
StoreBuffer::newestCoverSeq(Addr addr, unsigned size) const
{
    if (bytes_.empty() || addr + size <= boundLo_ || addr >= boundHi_)
        return 0;
    for (auto it = queue_.rbegin(); it != queue_.rend(); ++it)
        if (addr < it->addr + it->size && it->addr < addr + size)
            return it->seq;
    return 0;
}

u64
StoreBuffer::read64(const SparseMemory &mem, Addr addr) const
{
    if (!covers(addr, 8))
        return mem.read64(addr);
    u64 v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | readByte(mem, addr + i);
    return v;
}

void
StoreBuffer::removeBytes(const Pending &p)
{
    for (unsigned i = 0; i < p.size; ++i) {
        auto it = bytes_.find(p.addr + i);
        REV_ASSERT(it != bytes_.end(), "StoreBuffer: missing byte view");
        if (--it->second.refs == 0)
            bytes_.erase(it);
    }
}

void
StoreBuffer::drain(SparseMemory &mem, SeqNum upTo)
{
    while (!queue_.empty() && queue_.front().seq <= upTo) {
        const Pending p = queue_.front();
        queue_.pop_front();
        mem.write(p.addr, p.value, p.size);
        removeBytes(p);
    }
    resetBounds();
}

void
StoreBuffer::squash(SeqNum from)
{
    while (!queue_.empty() && queue_.back().seq >= from) {
        const Pending p = queue_.back();
        queue_.pop_back();
        removeBytes(p);
        // Re-derive the forwarded value for bytes still covered by an older
        // pending store to the same location.
        for (const auto &older : queue_) {
            for (unsigned i = 0; i < older.size; ++i) {
                const Addr b = older.addr + i;
                if (b >= p.addr && b < p.addr + p.size) {
                    auto it = bytes_.find(b);
                    if (it != bytes_.end())
                        it->second.value =
                            static_cast<u8>(older.value >> (8 * i));
                }
            }
        }
    }
    resetBounds();
}

// ---------------------------------------------------------------------------
// DecodeCache
// ---------------------------------------------------------------------------

void
DecodeCache::clear()
{
    pages_.clear();
    sblocks_.clear();
    lastPageNo_ = kNoAddr;
    lastPage_ = nullptr;
    memEpoch_ = ~u64{0};
    spanPages_.clear();
}

std::vector<u64>
DecodeCache::touchedPages() const
{
    std::vector<u64> out;
    out.reserve(pages_.size() + spanPages_.size());
    for (const auto &kv : pages_)
        out.push_back(kv.first);
    for (u64 p : spanPages_)
        if (!pages_.count(p))
            out.push_back(p);
    return out;
}

DecodeCache::CodePage &
DecodeCache::pageFor(const SparseMemory &mem, u64 page_no)
{
    if (mem.epoch() != memEpoch_) {
        // The page set was replaced wholesale (e.g. rollback): every
        // cached PageView may dangle. Start over.
        clear();
        memEpoch_ = mem.epoch();
    }
    if (page_no == lastPageNo_)
        return *lastPage_;
    CodePage &cp = pages_[page_no];
    if (cp.slots.empty()) {
        cp.slots.resize(SparseMemory::kPageSize);
        cp.state.assign(SparseMemory::kPageSize, kUnknown);
        cp.view = mem.pageView(page_no);
        cp.version = cp.view.version ? *cp.view.version : 0;
    }
    lastPageNo_ = page_no;
    lastPage_ = &cp;
    return cp;
}

const Predecoded *
DecodeCache::lookup(const SparseMemory &mem, Addr pc)
{
    const u64 page_no = pc >> SparseMemory::kPageShift;
    const u64 off = pc & (SparseMemory::kPageSize - 1);
    CodePage &cp = pageFor(mem, page_no);

    // Revalidate against the live page version; any write to the page
    // since the slots were filled drops them all.
    if (!cp.view.version) {
        // Page was unpopulated when first seen; a write may have created
        // it since (writes to other pages cannot affect this one).
        cp.view = mem.pageView(page_no);
        if (cp.view.version) {
            cp.state.assign(SparseMemory::kPageSize, kUnknown);
            cp.version = *cp.view.version;
        }
    } else if (*cp.view.version != cp.version) {
        cp.state.assign(SparseMemory::kPageSize, kUnknown);
        cp.version = *cp.view.version;
    }

    switch (cp.state[off]) {
      case kValid:
        return &cp.slots[off];
      case kInvalid:
        return nullptr;
      default:
        break;
    }

    u8 raw[8];
    mem.readBytes(pc, raw, sizeof(raw));
    const auto decoded = isa::decode(raw, sizeof(raw));

    // The decode result depends on bytes [pc, pc+len) — just the opcode
    // byte when it is not a defined opcode. Cache only when all deciding
    // bytes sit inside this page; otherwise a write to the *next* page
    // could change the instruction without touching this page's version.
    const unsigned declen =
        decoded ? decoded->length()
                : (isa::opcodeValid(raw[0])
                       ? opcodeLength(static_cast<Opcode>(raw[0]))
                       : 1);
    const bool cacheable = off + declen <= SparseMemory::kPageSize;
    if (!cacheable &&
        std::find(spanPages_.begin(), spanPages_.end(), page_no + 1) ==
            spanPages_.end())
        spanPages_.push_back(page_no + 1);

    if (!decoded) {
        if (cacheable)
            cp.state[off] = kInvalid;
        return nullptr;
    }

    Predecoded pd;
    pd.ins = *decoded;
    pd.len = static_cast<u8>(decoded->length());
    pd.use = isa::regUse(*decoded);
    if (cacheable) {
        cp.slots[off] = pd;
        cp.state[off] = kValid;
        return &cp.slots[off];
    }
    spanning_ = pd;
    return &spanning_;
}

const SuperBlock *
DecodeCache::superblockAt(const SparseMemory &mem, Addr pc)
{
    // All decoding funnels through lookup(), so every consistency
    // mechanism of the per-instruction cache — epoch reset, page-version
    // revalidation, the page-crossing exclusion, spanPages_ tracking for
    // the trace recorder's SMC verdict — applies to superblocks too.
    const u64 page_no = pc >> SparseMemory::kPageShift;
    SuperBlock *sb = nullptr;
    {
        auto it = sblocks_.find(pc);
        if (it != sblocks_.end()) {
            sb = &it->second;
            // NB: lookup()/pageFor() below can clear() the whole cache on
            // an epoch change, so validate the epoch through pageFor's
            // path before trusting sb. Cheapest safe order: probe the
            // page first (which performs the epoch check), then re-find.
        }
    }
    // Probing the page performs the epoch check (possibly clearing every
    // map, including sblocks_), so re-resolve the entry afterwards.
    const SparseMemory::PageView view = [&] {
        pageFor(mem, page_no);
        return mem.pageView(page_no);
    }();
    if (!view.version)
        return nullptr; // unpopulated page: nothing to pin a guard to

    auto it = sblocks_.find(pc);
    sb = it != sblocks_.end() ? &it->second : nullptr;
    if (sb && sb->version == *view.version && sb->liveVersion == view.version)
        return sb->tokens.empty() ? nullptr : sb;

    // Build (or rebuild in place — map nodes are pointer-stable).
    SuperBlock fresh;
    fresh.start = pc;
    fresh.pageNo = page_no;
    fresh.liveVersion = view.version;
    fresh.version = *view.version;
    Addr at = pc;
    while (fresh.tokens.size() < kMaxSuperBlockTokens) {
        const u64 off = at & (SparseMemory::kPageSize - 1);
        const Predecoded *pd = lookup(mem, at);
        if (!pd)
            break; // undecodable: slow path reports it
        if (off + pd->len > SparseMemory::kPageSize)
            break; // page-crossing: never cached, slow path executes it
        fresh.tokens.push_back(*pd);
        if (pd->ins.isControlFlow())
            break; // terminator included; block complete
        at += pd->len;
        if ((at >> SparseMemory::kPageShift) != page_no)
            break; // next instruction starts on another page
    }
    SuperBlock &slot = sblocks_[pc];
    slot = std::move(fresh);
    return slot.tokens.empty() ? nullptr : &slot;
}

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

Machine::Machine(const Program &program, SparseMemory &mem)
    : pc_(program.entry()), mem_(mem), dispatch_(dispatchMode())
{
    regs_.fill(0);
    regs_[isa::kRegSp] = Program::initialSp();
}

ExecRecord
Machine::step(StoreBuffer *sb, SeqNum seq)
{
    if (replayer_)
        return replayStep();
    if (dispatch_ == DispatchMode::Threaded)
        return stepThreaded(sb, seq);
    return stepSlow(sb, seq);
}

bool
Machine::cursorReady()
{
    // Epoch first: an epoch change clears the decode cache wholesale and
    // sbCur_ would dangle. The live page-version compare is the per-token
    // SMC guard — any store on the block's page (the machine's own
    // drained stores, a hook, an injector) forces a rebuild from the
    // fresh bytes, exactly like the per-instruction path's revalidation.
    return sbCur_ != nullptr && mem_.epoch() == sbEpoch_ &&
           pc_ == sbNextPc_ && sbIdx_ < sbCur_->tokens.size() &&
           *sbCur_->liveVersion == sbCur_->version;
}

ExecRecord
Machine::stepThreaded(StoreBuffer *sb, SeqNum seq)
{
    ExecRecord rec;
    rec.pc = pc_;

    if (halted_) {
        rec.halted = true;
        return rec;
    }

    if (!cursorReady()) {
        sbCur_ = dcache_.superblockAt(mem_, pc_);
        sbIdx_ = 0;
        sbEpoch_ = mem_.epoch();
        sbNextPc_ = pc_;
        if (!sbCur_) {
            // Undecodable, page-crossing, or unpopulated-page entry:
            // the per-instruction slow path handles it (and reports
            // invalid bytes the same way in both modes).
            return stepSlow(sb, seq);
        }
    }

    const Predecoded &t = sbCur_->tokens[sbIdx_];
    rec.ins = t.ins;
    rec.use = t.use;
    execToken(t.ins, t.len, rec, sb, seq);
    if (++sbIdx_ >= sbCur_->tokens.size())
        sbCur_ = nullptr; // block committed; next step attaches anew
    sbNextPc_ = rec.nextPc;

    pc_ = rec.nextPc;
    if (recorder_)
        recorder_->record(rec, rec.coverDist);
    return rec;
}

ExecRecord
Machine::stepSlow(StoreBuffer *sb, SeqNum seq)
{
    ExecRecord rec;
    rec.pc = pc_;

    if (halted_) {
        rec.halted = true;
        return rec;
    }

    const Predecoded *pd = dcache_.lookup(mem_, pc_);
    if (!pd) {
        rec.invalid = true;
        rec.halted = true;
        halted_ = true;
        if (recorder_)
            recorder_->markInvalid();
        return rec;
    }
    rec.ins = pd->ins;
    rec.use = pd->use;
    execIns(pd->ins, pd->len, rec, sb, seq);

    pc_ = rec.nextPc;
    if (recorder_)
        recorder_->record(rec, rec.coverDist);
    return rec;
}

void
Machine::execIns(const Instr &ins, unsigned len, ExecRecord &rec,
                 StoreBuffer *sb, SeqNum seq)
{
    const Addr fall = pc_ + len;
    rec.nextPc = fall;

    auto wr = [&](u64 v) { setReg(ins.rd, v); };
    const u64 a = regs_[ins.rs1];
    const u64 b = regs_[ins.rs2];
    const i64 simm = static_cast<i64>(ins.imm);
    const u64 zimm = static_cast<u32>(ins.imm);
    auto fp = [](u64 v) { return std::bit_cast<double>(v); };
    auto fpu = [](double d) { return std::bit_cast<u64>(d); };

    auto doStore = [&](Addr addr, u64 value, unsigned size = 8) {
        rec.isStore = true;
        rec.memAddr = addr;
        rec.memSize = size;
        rec.storeValue = value;
        if (sb)
            sb->push(seq, addr, value, size);
        else
            mem_.write(addr, value, size);
    };
    auto doLoad = [&](Addr addr, unsigned size = 8) {
        rec.isLoad = true;
        rec.memAddr = addr;
        rec.memSize = size;
        u64 v;
        if (sb && sb->covers(addr, size)) {
            if (recorder_)
                rec.coverDist = seq - sb->newestCoverSeq(addr, size);
            v = 0;
            for (unsigned i = size; i-- > 0;)
                v = (v << 8) | sb->readByte(mem_, addr + i);
        } else {
            v = mem_.read(addr, size);
        }
        rec.loadValue = v;
        return v;
    };

    switch (ins.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        halted_ = true;
        rec.halted = true;
        rec.nextPc = pc_;
        break;
      case Opcode::Ret: {
        const Addr sp = regs_[isa::kRegSp];
        rec.nextPc = doLoad(sp);
        regs_[isa::kRegSp] = sp + 8;
        break;
      }
      case Opcode::CallR:
      case Opcode::Call: {
        const Addr target = ins.op == Opcode::Call
                                ? ins.directTarget(pc_)
                                : regs_[ins.rs1];
        const Addr sp = regs_[isa::kRegSp] - 8;
        regs_[isa::kRegSp] = sp;
        doStore(sp, fall);
        rec.nextPc = target;
        break;
      }
      case Opcode::JmpR:
        rec.nextPc = regs_[ins.rs1];
        break;
      case Opcode::Jmp:
        rec.nextPc = ins.directTarget(pc_);
        break;
      case Opcode::Syscall:
        rec.isSyscall = true;
        rec.syscallNo = static_cast<u8>(ins.imm);
        break;

      case Opcode::Add: wr(a + b); break;
      case Opcode::Sub: wr(a - b); break;
      case Opcode::Mul: wr(a * b); break;
      case Opcode::Divu: wr(b == 0 ? 0 : a / b); break;
      case Opcode::And: wr(a & b); break;
      case Opcode::Or: wr(a | b); break;
      case Opcode::Xor: wr(a ^ b); break;
      case Opcode::Shl: wr(a << (b & 63)); break;
      case Opcode::Shr: wr(a >> (b & 63)); break;
      case Opcode::Slt:
        wr(static_cast<i64>(a) < static_cast<i64>(b) ? 1 : 0);
        break;
      case Opcode::Sltu: wr(a < b ? 1 : 0); break;
      case Opcode::Fadd: wr(fpu(fp(a) + fp(b))); break;
      case Opcode::Fsub: wr(fpu(fp(a) - fp(b))); break;
      case Opcode::Fmul: wr(fpu(fp(a) * fp(b))); break;
      case Opcode::Fdiv: wr(fpu(fp(a) / fp(b))); break;

      case Opcode::Movi: wr(static_cast<u64>(simm)); break;
      case Opcode::Lui: wr(zimm << 32); break;

      case Opcode::Addi: wr(a + static_cast<u64>(simm)); break;
      case Opcode::Andi: wr(a & zimm); break;
      case Opcode::Ori: wr(a | zimm); break;
      case Opcode::Xori: wr(a ^ zimm); break;
      case Opcode::Shli: wr(a << (ins.imm & 63)); break;
      case Opcode::Shri: wr(a >> (ins.imm & 63)); break;
      case Opcode::Slti:
        wr(static_cast<i64>(a) < simm ? 1 : 0);
        break;
      case Opcode::Muli: wr(a * static_cast<u64>(simm)); break;

      case Opcode::Ld:
        wr(doLoad(a + static_cast<u64>(simm)));
        break;
      case Opcode::St:
        doStore(a + static_cast<u64>(simm), regs_[ins.rd]);
        break;
      case Opcode::Lb:
        wr(doLoad(a + static_cast<u64>(simm), 1));
        break;
      case Opcode::Sb:
        doStore(a + static_cast<u64>(simm), regs_[ins.rd] & 0xff, 1);
        break;
      case Opcode::Lw:
        wr(doLoad(a + static_cast<u64>(simm), 4));
        break;
      case Opcode::Sw:
        doStore(a + static_cast<u64>(simm), regs_[ins.rd] & 0xffffffff, 4);
        break;

      case Opcode::Beq: rec.taken = a == b; goto branch;
      case Opcode::Bne: rec.taken = a != b; goto branch;
      case Opcode::Blt:
        rec.taken = static_cast<i64>(a) < static_cast<i64>(b);
        goto branch;
      case Opcode::Bge:
        rec.taken = static_cast<i64>(a) >= static_cast<i64>(b);
        goto branch;
      case Opcode::Bltu:
        rec.taken = a < b;
        goto branch;
      branch:
        if (rec.taken)
            rec.nextPc = ins.directTarget(pc_);
        break;
    }
}

// Token-threaded dispatch: GCC/Clang get a computed-goto label table (no
// bounds/range check, one indirect jump per token); elsewhere the token
// falls back to the dense-switch jump table in execIns, which compilers
// already lower to a direct jump table over the opcode byte.
#if defined(__GNUC__) || defined(__clang__)
#define REV_COMPUTED_GOTO 1
#else
#define REV_COMPUTED_GOTO 0
#endif

void
Machine::execToken(const Instr &ins, unsigned len, ExecRecord &rec,
                   StoreBuffer *sb, SeqNum seq)
{
#if REV_COMPUTED_GOTO
    // Label table indexed by the opcode byte 0x00..0x54 (tokens only
    // ever hold defined opcodes; undefined slots route to the shared
    // switch for safety). Label addresses are link-time constants, so
    // the static initializer is data, not a guarded dynamic init.
    static const void *const kOps[0x55] = {
        // 0x00-0x07
        &&op_other, &&op_halt, &&op_ret, &&op_nop,
        &&op_other, &&op_other, &&op_other, &&op_other,
        // 0x08-0x0f
        &&op_callr, &&op_jmpr, &&op_syscall, &&op_other,
        &&op_other, &&op_other, &&op_other, &&op_other,
        // 0x10-0x17
        &&op_add, &&op_sub, &&op_mul, &&op_divu,
        &&op_and, &&op_or, &&op_xor, &&op_shl,
        // 0x18-0x1f
        &&op_shr, &&op_slt, &&op_sltu, &&op_fadd,
        &&op_fsub, &&op_fmul, &&op_fdiv, &&op_other,
        // 0x20-0x27
        &&op_jmp, &&op_call, &&op_other, &&op_other,
        &&op_other, &&op_other, &&op_other, &&op_other,
        // 0x28-0x2f
        &&op_movi, &&op_lui, &&op_other, &&op_other,
        &&op_other, &&op_other, &&op_other, &&op_other,
        // 0x30-0x37
        &&op_addi, &&op_andi, &&op_ori, &&op_xori,
        &&op_shli, &&op_shri, &&op_slti, &&op_muli,
        // 0x38-0x3f
        &&op_other, &&op_other, &&op_other, &&op_other,
        &&op_other, &&op_other, &&op_other, &&op_other,
        // 0x40-0x47
        &&op_ld, &&op_st, &&op_lb, &&op_sb,
        &&op_lw, &&op_sw, &&op_other, &&op_other,
        // 0x48-0x4f
        &&op_other, &&op_other, &&op_other, &&op_other,
        &&op_other, &&op_other, &&op_other, &&op_other,
        // 0x50-0x54
        &&op_beq, &&op_bne, &&op_blt, &&op_bge, &&op_bltu,
    };

    const Addr fall = pc_ + len;
    rec.nextPc = fall;

    auto wr = [&](u64 v) { setReg(ins.rd, v); };
    const u64 a = regs_[ins.rs1];
    const u64 b = regs_[ins.rs2];
    const i64 simm = static_cast<i64>(ins.imm);
    const u64 zimm = static_cast<u32>(ins.imm);
    auto fp = [](u64 v) { return std::bit_cast<double>(v); };
    auto fpu = [](double d) { return std::bit_cast<u64>(d); };

    auto doStore = [&](Addr addr, u64 value, unsigned size = 8) {
        rec.isStore = true;
        rec.memAddr = addr;
        rec.memSize = size;
        rec.storeValue = value;
        if (sb)
            sb->push(seq, addr, value, size);
        else
            mem_.write(addr, value, size);
    };
    auto doLoad = [&](Addr addr, unsigned size = 8) {
        rec.isLoad = true;
        rec.memAddr = addr;
        rec.memSize = size;
        u64 v;
        if (sb && sb->covers(addr, size)) {
            if (recorder_)
                rec.coverDist = seq - sb->newestCoverSeq(addr, size);
            v = 0;
            for (unsigned i = size; i-- > 0;)
                v = (v << 8) | sb->readByte(mem_, addr + i);
        } else {
            v = mem_.read(addr, size);
        }
        rec.loadValue = v;
        return v;
    };

    goto *kOps[static_cast<u8>(ins.op)];

op_nop:
    return;
op_halt:
    halted_ = true;
    rec.halted = true;
    rec.nextPc = pc_;
    return;
op_ret: {
    const Addr sp = regs_[isa::kRegSp];
    rec.nextPc = doLoad(sp);
    regs_[isa::kRegSp] = sp + 8;
    return;
}
op_callr:
op_call: {
    const Addr target =
        ins.op == Opcode::Call ? ins.directTarget(pc_) : regs_[ins.rs1];
    const Addr sp = regs_[isa::kRegSp] - 8;
    regs_[isa::kRegSp] = sp;
    doStore(sp, fall);
    rec.nextPc = target;
    return;
}
op_jmpr:
    rec.nextPc = regs_[ins.rs1];
    return;
op_jmp:
    rec.nextPc = ins.directTarget(pc_);
    return;
op_syscall:
    rec.isSyscall = true;
    rec.syscallNo = static_cast<u8>(ins.imm);
    return;

op_add: wr(a + b); return;
op_sub: wr(a - b); return;
op_mul: wr(a * b); return;
op_divu: wr(b == 0 ? 0 : a / b); return;
op_and: wr(a & b); return;
op_or: wr(a | b); return;
op_xor: wr(a ^ b); return;
op_shl: wr(a << (b & 63)); return;
op_shr: wr(a >> (b & 63)); return;
op_slt: wr(static_cast<i64>(a) < static_cast<i64>(b) ? 1 : 0); return;
op_sltu: wr(a < b ? 1 : 0); return;
op_fadd: wr(fpu(fp(a) + fp(b))); return;
op_fsub: wr(fpu(fp(a) - fp(b))); return;
op_fmul: wr(fpu(fp(a) * fp(b))); return;
op_fdiv: wr(fpu(fp(a) / fp(b))); return;

op_movi: wr(static_cast<u64>(simm)); return;
op_lui: wr(zimm << 32); return;

op_addi: wr(a + static_cast<u64>(simm)); return;
op_andi: wr(a & zimm); return;
op_ori: wr(a | zimm); return;
op_xori: wr(a ^ zimm); return;
op_shli: wr(a << (ins.imm & 63)); return;
op_shri: wr(a >> (ins.imm & 63)); return;
op_slti: wr(static_cast<i64>(a) < simm ? 1 : 0); return;
op_muli: wr(a * static_cast<u64>(simm)); return;

op_ld: wr(doLoad(a + static_cast<u64>(simm))); return;
op_st: doStore(a + static_cast<u64>(simm), regs_[ins.rd]); return;
op_lb: wr(doLoad(a + static_cast<u64>(simm), 1)); return;
op_sb: doStore(a + static_cast<u64>(simm), regs_[ins.rd] & 0xff, 1); return;
op_lw: wr(doLoad(a + static_cast<u64>(simm), 4)); return;
op_sw:
    doStore(a + static_cast<u64>(simm), regs_[ins.rd] & 0xffffffff, 4);
    return;

op_beq: rec.taken = a == b; goto branch;
op_bne: rec.taken = a != b; goto branch;
op_blt: rec.taken = static_cast<i64>(a) < static_cast<i64>(b); goto branch;
op_bge: rec.taken = static_cast<i64>(a) >= static_cast<i64>(b); goto branch;
op_bltu: rec.taken = a < b; goto branch;
branch:
    if (rec.taken)
        rec.nextPc = ins.directTarget(pc_);
    return;

op_other:
    execIns(ins, len, rec, sb, seq);
#else
    execIns(ins, len, rec, sb, seq);
#endif
}

u64
Machine::replayConsumed() const
{
    return replayer_ ? replayer_->consumed() : 0;
}

/**
 * Re-derive one ExecRecord from the trace: decode the (unchanged) code
 * image through the cache, then read only the data-dependent events the
 * recorder emitted for this opcode. No architectural state beyond the PC
 * is maintained — register values, load values, and store values are
 * never timing inputs, and replay applies no stores.
 *
 * In threaded dispatch the decode rides the same superblock cursor as
 * direct execution (one guarded attach per basic block instead of one
 * cache probe per instruction); the trace events consumed are identical.
 */
ExecRecord
Machine::replayStep()
{
    ExecRecord rec;
    rec.pc = pc_;

    if (halted_) {
        rec.halted = true;
        return rec;
    }
    REV_ASSERT(!replayer_->exhausted(),
               "trace replay: stepped past the recorded instruction stream");

    if (dispatch_ == DispatchMode::Threaded) {
        if (!cursorReady()) {
            sbCur_ = dcache_.superblockAt(mem_, pc_);
            sbIdx_ = 0;
            sbEpoch_ = mem_.epoch();
            sbNextPc_ = pc_;
        }
        if (sbCur_) {
            const Predecoded &t = sbCur_->tokens[sbIdx_];
            rec.ins = t.ins;
            rec.use = t.use;
            rec.nextPc = pc_ + t.len;
            replayExec(t.ins, rec);
            if (++sbIdx_ >= sbCur_->tokens.size())
                sbCur_ = nullptr;
            sbNextPc_ = rec.nextPc;
            replayer_->advance();
            pc_ = rec.nextPc;
            return rec;
        }
        // No superblock at this pc (undecodable entry, page-crossing
        // first instruction, unpopulated page): per-instruction path.
    }

    const Predecoded *pd = dcache_.lookup(mem_, pc_);
    REV_ASSERT(pd, "trace replay: undecodable bytes at recorded pc");
    rec.ins = pd->ins;
    rec.use = pd->use;
    rec.nextPc = pc_ + pd->len;
    replayExec(pd->ins, rec);
    replayer_->advance();
    pc_ = rec.nextPc;
    return rec;
}

/** The per-opcode trace reads of replayStep() (shared by both dispatch
 *  modes). Expects rec.nextPc preset to the fall-through address. */
void
Machine::replayExec(const Instr &ins, ExecRecord &rec)
{
    auto load = [&](unsigned size) {
        rec.isLoad = true;
        rec.memAddr = replayer_->readMemAddr();
        rec.memSize = size;
        rec.coverDist = replayer_->readCoverDist();
    };
    auto store = [&](unsigned size) {
        rec.isStore = true;
        rec.memAddr = replayer_->readMemAddr();
        rec.memSize = size;
    };

    switch (ins.op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
        rec.taken = replayer_->readTaken();
        if (rec.taken)
            rec.nextPc = ins.directTarget(pc_);
        break;
      case Opcode::Ld: load(8); break;
      case Opcode::Lb: load(1); break;
      case Opcode::Lw: load(4); break;
      case Opcode::St: store(8); break;
      case Opcode::Sb: store(1); break;
      case Opcode::Sw: store(4); break;
      case Opcode::Ret:
        load(8);
        rec.nextPc = replayer_->readNextPc(pc_);
        break;
      case Opcode::Call:
        store(8);
        rec.nextPc = ins.directTarget(pc_);
        break;
      case Opcode::CallR:
        store(8);
        rec.nextPc = replayer_->readNextPc(pc_);
        break;
      case Opcode::JmpR:
        rec.nextPc = replayer_->readNextPc(pc_);
        break;
      case Opcode::Jmp:
        rec.nextPc = ins.directTarget(pc_);
        break;
      case Opcode::Halt:
        halted_ = true;
        rec.halted = true;
        rec.nextPc = pc_;
        break;
      case Opcode::Syscall:
        rec.isSyscall = true;
        rec.syscallNo = static_cast<u8>(ins.imm);
        break;
      default:
        break; // plain ALU / immediate: fall-through next pc, no events
    }
}

u64
runToHalt(Machine &machine, u64 max_instrs)
{
    u64 count = 0;
    while (!machine.halted() && count < max_instrs) {
        machine.step();
        ++count;
    }
    return count;
}

} // namespace rev::prog
