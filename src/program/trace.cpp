#include "program/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string_view>

#include "common/logging.hpp"

namespace rev::prog
{

bool
replayEnabledFromEnv()
{
    const char *env = std::getenv("REV_TRACE_REPLAY");
    return !env || std::string_view(env) != "0";
}

using isa::Opcode;

// ---------------------------------------------------------------------------
// Trace (de)serialization
// ---------------------------------------------------------------------------

namespace
{

constexpr char kTraceMagic[4] = {'R', 'V', 'T', 'R'};

void
put64(std::ostream &os, u64 v)
{
    u8 buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<u8>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(buf), sizeof(buf));
}

bool
get64(std::istream &is, u64 &v)
{
    u8 buf[8];
    is.read(reinterpret_cast<char *>(buf), sizeof(buf));
    if (!is)
        return false;
    v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | buf[i];
    return true;
}

bool
getBlob(std::istream &is, std::vector<u8> &out)
{
    u64 size = 0;
    if (!get64(is, size) || size > (u64{1} << 40))
        return false;
    out.resize(static_cast<std::size_t>(size));
    is.read(reinterpret_cast<char *>(out.data()),
            static_cast<std::streamsize>(size));
    return static_cast<bool>(is);
}

} // namespace

bool
Trace::save(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    os.write(kTraceMagic, sizeof(kTraceMagic));
    put64(os, formatVersion);
    put64(os, entryPc);
    put64(os, maxInstrs);
    put64(os, splitLimits.maxInstrs);
    put64(os, splitLimits.maxStores);
    put64(os, instrCount);
    const u64 flags = (complete ? 1u : 0u) | (sawViolation ? 2u : 0u) |
                      (sawInvalid ? 4u : 0u) | (smcDetected ? 8u : 0u);
    put64(os, flags);
    put64(os, codePages.size());
    for (const auto &[page, version] : codePages) {
        put64(os, page);
        put64(os, version);
    }
    put64(os, bytes.size());
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    put64(os, bits.size());
    os.write(reinterpret_cast<const char *>(bits.data()),
             static_cast<std::streamsize>(bits.size()));
    put64(os, bitCount);
    return static_cast<bool>(os);
}

bool
Trace::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0)
        return false;
    u64 version = 0, split_instrs = 0, split_stores = 0, flags = 0,
        npages = 0;
    if (!get64(is, version) || version != kTraceFormatVersion)
        return false;
    formatVersion = static_cast<u32>(version);
    if (!get64(is, entryPc) || !get64(is, maxInstrs) ||
        !get64(is, split_instrs) || !get64(is, split_stores) ||
        !get64(is, instrCount) || !get64(is, flags) || !get64(is, npages))
        return false;
    splitLimits.maxInstrs = static_cast<unsigned>(split_instrs);
    splitLimits.maxStores = static_cast<unsigned>(split_stores);
    complete = flags & 1;
    sawViolation = flags & 2;
    sawInvalid = flags & 4;
    smcDetected = flags & 8;
    codePages.clear();
    codePages.reserve(static_cast<std::size_t>(npages));
    for (u64 i = 0; i < npages; ++i) {
        u64 page = 0, ver = 0;
        if (!get64(is, page) || !get64(is, ver))
            return false;
        codePages.emplace_back(page, ver);
    }
    return getBlob(is, bytes) && getBlob(is, bits) && get64(is, bitCount);
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

void
TraceRecorder::begin(Addr entry_pc, u64 max_instrs, const SplitLimits &limits,
                     u64 mem_epoch)
{
    trace_ = Trace{};
    trace_.entryPc = entry_pc;
    trace_.maxInstrs = max_instrs;
    trace_.splitLimits = limits;
    lastMemAddr_ = 0;
    memEpochAtBegin_ = mem_epoch;
    storePages_.clear();
}

void
TraceRecorder::putVarint(u64 v)
{
    while (v >= 0x80) {
        trace_.bytes.push_back(static_cast<u8>(v) | 0x80);
        v >>= 7;
    }
    trace_.bytes.push_back(static_cast<u8>(v));
}

void
TraceRecorder::putZigzag(i64 v)
{
    putVarint((static_cast<u64>(v) << 1) ^
              static_cast<u64>(v >> 63));
}

void
TraceRecorder::putBit(bool b)
{
    const u64 off = trace_.bitCount++;
    if ((off & 7) == 0)
        trace_.bits.push_back(0);
    if (b)
        trace_.bits.back() |= static_cast<u8>(1u << (off & 7));
}

void
TraceRecorder::record(const ExecRecord &rec, u64 cover_dist)
{
    auto mem_addr = [&] {
        putZigzag(static_cast<i64>(rec.memAddr - lastMemAddr_));
        lastMemAddr_ = rec.memAddr;
    };
    auto next_pc = [&] {
        putZigzag(static_cast<i64>(rec.nextPc - rec.pc));
    };
    auto store_pages = [&] {
        for (u64 p = rec.memAddr >> SparseMemory::kPageShift;
             p <= (rec.memAddr + rec.memSize - 1) >> SparseMemory::kPageShift;
             ++p)
            storePages_.insert(p);
    };

    switch (rec.ins.op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
        putBit(rec.taken);
        break;
      case Opcode::Ld:
      case Opcode::Lb:
      case Opcode::Lw:
        mem_addr();
        putVarint(cover_dist);
        break;
      case Opcode::St:
      case Opcode::Sb:
      case Opcode::Sw:
        mem_addr();
        store_pages();
        break;
      case Opcode::Ret:
        mem_addr();
        putVarint(cover_dist);
        next_pc();
        break;
      case Opcode::Call:
        mem_addr();
        store_pages();
        break;
      case Opcode::CallR:
        mem_addr();
        store_pages();
        next_pc();
        break;
      case Opcode::JmpR:
        next_pc();
        break;
      default:
        break; // static-next-pc instruction: no data-dependent events
    }
    ++trace_.instrCount;
}

void
TraceRecorder::finish(const Machine &machine)
{
    const SparseMemory &mem = machine.memory();
    // A wholesale page-set replacement (e.g. a shadow-page rollback) wipes
    // the decode cache's page history; be conservative.
    if (mem.epoch() != memEpochAtBegin_)
        trace_.smcDetected = true;

    trace_.codePages.clear();
    for (u64 page : machine.decodePages()) {
        const SparseMemory::PageView v = mem.pageView(page);
        trace_.codePages.emplace_back(page, v.version ? *v.version : 0);
        // Any program store landing on a page the decoder fetched from
        // (JIT-style write-then-execute, patch-after-decode, or a wrong-
        // path fetch into written data) makes the static-code assumption
        // unsound: replay would decode different bytes.
        if (storePages_.count(page))
            trace_.smcDetected = true;
    }
    std::sort(trace_.codePages.begin(), trace_.codePages.end());
    trace_.complete = true;
}

// ---------------------------------------------------------------------------
// TraceReplayer
// ---------------------------------------------------------------------------

u64
TraceReplayer::readVarint()
{
    u64 v = 0;
    unsigned shift = 0;
    while (true) {
        REV_ASSERT(byteOff_ < trace_->bytes.size(),
                   "trace replay: varint stream exhausted");
        const u8 b = trace_->bytes[byteOff_++];
        v |= static_cast<u64>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        REV_ASSERT(shift < 64, "trace replay: varint overflow");
    }
}

i64
TraceReplayer::readZigzag()
{
    const u64 v = readVarint();
    return static_cast<i64>((v >> 1) ^ (~(v & 1) + 1));
}

bool
TraceReplayer::readTaken()
{
    REV_ASSERT(bitOff_ < trace_->bitCount,
               "trace replay: taken-bit stream exhausted");
    const u64 off = bitOff_++;
    return (trace_->bits[static_cast<std::size_t>(off >> 3)] >>
            (off & 7)) &
           1;
}

Addr
TraceReplayer::readMemAddr()
{
    lastMemAddr_ += static_cast<u64>(readZigzag());
    return lastMemAddr_;
}

Addr
TraceReplayer::readNextPc(Addr pc)
{
    return pc + static_cast<u64>(readZigzag());
}

} // namespace rev::prog
