/**
 * @file
 * An executable module: a named byte image at a base address, plus the
 * metadata needed to build its reference signature table.
 *
 * A Program is made of one or more modules (main executable plus statically
 * or dynamically linked libraries, Sec. IV.B). Each module gets its own
 * encrypted signature table and its own secret key.
 */

#ifndef REV_PROGRAM_MODULE_HPP
#define REV_PROGRAM_MODULE_HPP

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rev::prog
{

/**
 * A linked, loadable module.
 */
struct Module
{
    std::string name;

    /** Load address of the first byte of the image. */
    Addr base = 0;

    /** Raw bytes: code region [0, codeSize) followed by data. */
    std::vector<u8> image;

    /** Bytes of the code region; data (jump tables etc.) follows. */
    std::size_t codeSize = 0;

    /** Entry point (absolute address); meaningful for the main module. */
    Addr entry = 0;

    /** Symbol table: label -> absolute address. */
    std::map<std::string, Addr> symbols;

    /**
     * Statically known targets of computed control transfers:
     * address of the CALLR/JMPR instruction -> possible target addresses.
     * Populated by the toolchain (assembler annotations) and/or profiling
     * runs (Sec. IV.D).
     */
    std::map<Addr, std::vector<Addr>> indirectTargets;

    Addr codeEnd() const { return base + codeSize; }
    Addr imageEnd() const { return base + image.size(); }

    bool
    containsCode(Addr addr) const
    {
        return addr >= base && addr < codeEnd();
    }

    bool
    containsAddr(Addr addr) const
    {
        return addr >= base && addr < imageEnd();
    }

    /** Look up a symbol; throws FatalError if undefined. */
    Addr symbol(const std::string &label) const;
};

} // namespace rev::prog

#endif // REV_PROGRAM_MODULE_HPP
