#include "program/profiler.hpp"

#include <algorithm>

#include "isa/opcodes.hpp"

namespace rev::prog
{

Profile
profileRun(const Program &program, u64 max_instrs)
{
    SparseMemory mem;
    program.loadInto(mem);
    Machine machine(program, mem);

    Profile prof;
    while (!machine.halted() && prof.instrCount < max_instrs) {
        const ExecRecord rec = machine.step();
        if (rec.invalid)
            break;
        ++prof.instrCount;
        if (rec.ins.isControlFlow()) {
            ++prof.branchCount;
            if (rec.ins.isComputed())
                prof.indirectTargets[rec.pc].insert(rec.nextPc);
        }
    }
    prof.halted = machine.halted();
    return prof;
}

void
applyProfile(Program &program, const Profile &profile)
{
    for (auto &mod : program.modules()) {
        for (const auto &[site, targets] : profile.indirectTargets) {
            if (!mod.containsCode(site))
                continue;
            auto &annot = mod.indirectTargets[site];
            for (Addr t : targets)
                if (std::find(annot.begin(), annot.end(), t) == annot.end())
                    annot.push_back(t);
        }
    }
}

} // namespace rev::prog
