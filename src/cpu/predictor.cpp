#include "cpu/predictor.hpp"

#include "common/bitutil.hpp"
#include "common/logging.hpp"

namespace rev::cpu
{

using isa::InstrClass;

BranchPredictor::BranchPredictor(const PredictorConfig &cfg) : cfg_(cfg)
{
    if (!isPow2(cfg_.gshareEntries) || !isPow2(cfg_.btbEntries))
        fatal("predictor tables must be powers of two");
    counters_.assign(cfg_.gshareEntries, 2); // weakly taken
    btb_.resize(cfg_.btbEntries);
    ras_.resize(cfg_.rasEntries);
}

unsigned
BranchPredictor::gshareIndex(Addr pc) const
{
    return static_cast<unsigned>((pc ^ history_) & (cfg_.gshareEntries - 1));
}

unsigned
BranchPredictor::btbIndex(Addr pc) const
{
    return static_cast<unsigned>((pc >> 1) & (cfg_.btbEntries - 1));
}

Prediction
BranchPredictor::predict(const isa::Instr &ins, Addr pc)
{
    ++lookups_;
    Prediction pred;
    switch (ins.klass()) {
      case InstrClass::Branch: {
        pred.taken = counters_[gshareIndex(pc)] >= 2;
        pred.target = pred.taken ? ins.directTarget(pc)
                                 : ins.fallThrough(pc);
        pred.valid = true;
        break;
      }
      case InstrClass::Jump:
        pred.taken = true;
        pred.target = ins.directTarget(pc);
        pred.valid = true;
        break;
      case InstrClass::Call:
      case InstrClass::CallIndirect: {
        pred.taken = true;
        // Circular RAS: overflow silently wraps, keeping the newest
        // frames (standard hardware behaviour).
        ras_[rasTop_ % ras_.size()] = ins.fallThrough(pc);
        ++rasTop_;
        if (ins.klass() == InstrClass::Call) {
            pred.target = ins.directTarget(pc);
            pred.valid = true;
        } else {
            const BtbEntry &e = btb_[btbIndex(pc)];
            pred.valid = e.valid && e.pc == pc;
            pred.target = pred.valid ? e.target : 0;
        }
        break;
      }
      case InstrClass::JumpIndirect: {
        pred.taken = true;
        const BtbEntry &e = btb_[btbIndex(pc)];
        pred.valid = e.valid && e.pc == pc;
        pred.target = pred.valid ? e.target : 0;
        break;
      }
      case InstrClass::Return:
        pred.taken = true;
        if (rasTop_ > 0) {
            --rasTop_;
            pred.target = ras_[rasTop_ % ras_.size()];
            pred.valid = true;
        }
        break;
      default:
        // Not a control-flow instruction: fall through.
        pred.taken = false;
        pred.target = ins.fallThrough(pc);
        pred.valid = true;
        break;
    }
    return pred;
}

void
BranchPredictor::update(const isa::Instr &ins, Addr pc, bool taken,
                        Addr target)
{
    switch (ins.klass()) {
      case InstrClass::Branch: {
        u8 &ctr = counters_[gshareIndex(pc)];
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
        history_ = (history_ << 1) | (taken ? 1 : 0);
        break;
      }
      case InstrClass::CallIndirect:
      case InstrClass::JumpIndirect: {
        BtbEntry &e = btb_[btbIndex(pc)];
        e.pc = pc;
        e.target = target;
        e.valid = true;
        break;
      }
      default:
        break;
    }
}

bool
BranchPredictor::predictAndTrain(const isa::Instr &ins, Addr pc, bool taken,
                                 Addr target, Prediction *out)
{
    const Prediction pred = predict(ins, pc);
    update(ins, pc, taken, target);
    if (out)
        *out = pred;
    const bool wrong = !pred.valid || pred.taken != taken ||
                       (pred.taken && pred.target != target);
    if (ins.isControlFlow() && wrong)
        ++mispredicts_;
    return wrong;
}

void
BranchPredictor::addStats(stats::StatGroup &group) const
{
    group.add("bp.lookups", &lookups_);
    group.add("bp.mispredicts", &mispredicts_);
}

} // namespace rev::cpu
