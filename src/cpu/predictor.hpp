/**
 * @file
 * Branch prediction: 32K-entry gshare direction predictor (Table 2), a
 * tagged BTB for computed-branch targets, and a return-address stack.
 */

#ifndef REV_CPU_PREDICTOR_HPP
#define REV_CPU_PREDICTOR_HPP

#include <vector>

#include "common/stats.hpp"
#include "isa/instr.hpp"

namespace rev::cpu
{

/** Predictor configuration. */
struct PredictorConfig
{
    unsigned gshareEntries = 32 * 1024; ///< 2-bit counters
    unsigned btbEntries = 4096;
    unsigned rasEntries = 32;
};

/** Outcome of a prediction. */
struct Prediction
{
    bool taken = false;  ///< direction (conditional branches)
    Addr target = 0;     ///< predicted next PC
    bool valid = false;  ///< a target prediction was available
};

/**
 * Front-end branch predictor. predict() is called at fetch of a
 * control-flow instruction; update() with the actual outcome trains the
 * structures (the simulator fetches down the resolved path, so train-at-
 * fetch is equivalent to train-at-commit for this model).
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const PredictorConfig &cfg = {});

    /** Predict the next PC after @p ins at @p pc. */
    Prediction predict(const isa::Instr &ins, Addr pc);

    /** Train with the actual direction/target. */
    void update(const isa::Instr &ins, Addr pc, bool taken, Addr target);

    u64 lookups() const { return lookups_; }
    u64 mispredicts() const { return mispredicts_; }

    /** Convenience: predict + update + mispredict accounting in one call.
     *  Returns true if the prediction was wrong. @p out, when non-null,
     *  receives the prediction itself (for wrong-path modeling). */
    bool predictAndTrain(const isa::Instr &ins, Addr pc, bool taken,
                         Addr target, Prediction *out = nullptr);

    void addStats(stats::StatGroup &group) const;

  private:
    unsigned gshareIndex(Addr pc) const;
    unsigned btbIndex(Addr pc) const;

    PredictorConfig cfg_;
    std::vector<u8> counters_; ///< 2-bit saturating
    u64 history_ = 0;

    struct BtbEntry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb_;

    std::vector<Addr> ras_;
    std::size_t rasTop_ = 0; ///< number of valid entries

    stats::Counter lookups_, mispredicts_;
};

} // namespace rev::cpu

#endif // REV_CPU_PREDICTOR_HPP
