#include "cpu/core.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace rev::cpu
{

using isa::InstrClass;

namespace
{

/** Decode/rename depth in cycles (part of the S-stage front end). */
constexpr unsigned kDecodeDepth = 6;

} // namespace

Core::Core(const prog::Program &program, SparseMemory &mem,
           mem::MemorySystem &memsys, const CoreConfig &cfg,
           validate::Validator *hooks, unsigned core_id)
    : program_(program), mem_(mem), memsys_(memsys), coreId_(core_id),
      cfg_(cfg), hooks_(hooks ? *hooks : nullHooks_), machine_(program, mem),
      predictor_(cfg.predictor)
{
}

void
Core::drainStores(SeqNum up_to, Cycle at)
{
    while (!pendingStores_.empty() && pendingStores_.front().seq <= up_to) {
        memsys_.access(pendingStores_.front().addr,
                       mem::AccessType::DataWrite, at, coreId_);
        pendingStores_.pop_front();
    }
}

Core::RunState::RunState(const CoreConfig &cfg, Addr pc, Cycle clock_base)
    : fetchW(cfg.fetchWidth), dispatchW(cfg.dispatchWidth),
      commitW(cfg.commitWidth), rob(cfg.robSize), iq(cfg.iqSize),
      lsq(cfg.lsqSize), fq(cfg.fetchQueueSize), alu(cfg.numIntAlu),
      fpu(cfg.numFpu), ldPort(cfg.numLoadPorts), stPort(cfg.numStorePorts),
      // Resumed runs continue the cycle timebase so the (persistent)
      // memory-system port and bank timestamps stay coherent.
      fetchResume(clock_base), fetchFrontier(clock_base),
      lineReady(clock_base), prevCommit(clock_base), bb{pc, 0, 0, 1},
      nextInterrupt(cfg.interruptInterval ? clock_base + cfg.interruptInterval
                                          : kNoCycle),
      clockStart(clock_base)
{
}

RunResult
Core::run()
{
    RunResult res;
    const bool paused = runSlice(kRunToEnd, &res);
    REV_ASSERT(!paused, "run() cannot pause");
    return res;
}

bool
Core::runSlice(u64 pause_before, RunResult *out)
{
    // Attack injectors mutate machine/memory state mid-run, which a
    // replayed trace cannot reflect: fall back to direct execution. Only
    // legal before anything was consumed — the architectural state is
    // still the recorded run's starting state at that point.
    if (preStep_ && machine_.replaying()) {
        REV_ASSERT(machine_.replayConsumed() == 0,
                   "PreStepHook attached mid-replay");
        machine_.cancelReplay();
    }

    if (!state_)
        state_.emplace(cfg_, machine_.pc(), clockBase_);
    lastCommit_ = state_->prevCommit;
    if (loop(*state_, pause_before))
        return true;
    RunResult res = finish(*state_);
    if (out)
        *out = res;
    return false;
}

bool
Core::runUntil(u64 index, RunResult *out)
{
    // Snapshot cursors execute directly: a replayed machine maintains no
    // architectural state to capture.
    REV_ASSERT(!machine_.replaying(), "runUntil() on a replaying machine");
    if (!state_)
        state_.emplace(cfg_, machine_.pc(), clockBase_);
    lastCommit_ = state_->prevCommit;
    if (loop(*state_, index))
        return true;
    RunResult res = finish(*state_);
    if (out)
        *out = res;
    return false;
}

Core::Snapshot
Core::saveState() const
{
    Snapshot snap;
    snap.regs = machine_.regs();
    snap.pc = machine_.pc();
    snap.halted = machine_.halted();
    snap.storeBuffer = sb_;
    snap.predictor = predictor_;
    snap.pendingStores = pendingStores_;
    snap.clockBase = clockBase_;
    snap.lastCommit = lastCommit_;
    snap.runState = state_;
    return snap;
}

void
Core::restoreState(const Snapshot &snap)
{
    machine_.restoreArch(snap.regs, snap.pc, snap.halted);
    sb_ = snap.storeBuffer;
    predictor_ = snap.predictor;
    pendingStores_ = snap.pendingStores;
    clockBase_ = snap.clockBase;
    lastCommit_ = snap.lastCommit;
    state_ = snap.runState;
}

bool
Core::loop(RunState &st, u64 pause_before)
{
    RunResult &res = st.res;
    WidthLimiter &fetch_w = st.fetchW;
    WidthLimiter &dispatch_w = st.dispatchW;
    WidthLimiter &commit_w = st.commitW;
    OccupancyRing &rob = st.rob;
    OccupancyRing &iq = st.iq;
    OccupancyRing &lsq = st.lsq;
    OccupancyRing &fq = st.fq;
    FuPool &alu = st.alu;
    FuPool &fpu = st.fpu;
    FuPool &ld_port = st.ldPort;
    FuPool &st_port = st.stPort;
    std::array<Cycle, isa::kNumArchRegs> &reg_ready = st.regReady;
    std::unordered_set<Addr> &unique_branches = st.uniqueBranches;
    Cycle &fetch_resume = st.fetchResume;
    Cycle &fetch_frontier = st.fetchFrontier;
    Addr &last_line = st.lastLine;
    Cycle &line_ready = st.lineReady;
    Cycle &prev_commit = st.prevCommit;
    SeqNum &seq = st.seq;
    // Newest sequence number released from the store buffer. During
    // replay the buffer holds nothing (replay applies no stores), so
    // store-queue forwarding is decided from the recorded cover distance
    // against this config's own drain watermark instead of sb_.covers().
    SeqNum &drained_seq = st.drainedSeq;
    BBState &bb = st.bb;
    BBSeq &bb_counter = st.bbCounter;
    Cycle &next_interrupt = st.nextInterrupt;

    const unsigned line_bytes = memsys_.config().lineBytes;
    const unsigned line_shift = 6; // 64-byte lines
    REV_ASSERT(line_bytes == 64, "core assumes 64-byte lines");

    while (true) {
        // Pause BEFORE the pre-step of the stop instruction: the fork's
        // (or the resumed run's) first pre-step then fires for exactly
        // this index, as a cold run's would.
        if (pause_before != kRunToEnd && res.instrs >= pause_before)
            return true;
        if (preStep_)
            preStep_(res.instrs, machine_.pc());
        if (machine_.halted())
            break;

        const Addr pc = machine_.pc();
        const prog::ExecRecord rec = machine_.step(&sb_, ++seq);
        if (rec.invalid) {
            res.violation = Violation{prev_commit, pc, seq,
                                      "undecodable instruction bytes"};
            break;
        }
        const unsigned len = rec.ins.length();

        // ---- fetch -------------------------------------------------------
        Cycle fetch_lower = std::max(fetch_resume, fetch_frontier);
        for (Addr line = pc >> line_shift; line <= (pc + len - 1) >> line_shift;
             ++line) {
            if (line == last_line)
                continue;
            last_line = line;
            const auto r = memsys_.access(line << line_shift,
                                          mem::AccessType::InstrFetch,
                                          fetch_lower, coreId_);
            line_ready = r.l1Hit ? fetch_lower : r.completeAt;
            if (!r.l1Hit && cfg_.nextLinePrefetch) {
                // Prefetch the next line at the lowest priority class.
                memsys_.access((line + 1) << line_shift,
                               mem::AccessType::Prefetch, fetch_lower,
                               coreId_);
            }
        }
        fetch_lower = std::max({fetch_lower, line_ready, fq.allocReadyAt()});
        const Cycle fetch_at = fetch_w.reserve(fetch_lower);
        fetch_frontier = fetch_at;

        // ---- basic-block tracking (front end) -----------------------------
        ++bb.instrs;
        if (rec.ins.writesMem())
            ++bb.stores;
        const bool is_cf = rec.ins.isControlFlow();
        const bool is_split =
            !is_cf && (bb.instrs >= cfg_.splitLimits.maxInstrs ||
                       bb.stores >= cfg_.splitLimits.maxStores);
        const bool is_term = is_cf || is_split;

        if (is_term) {
            validate::BBFetchInfo info;
            info.bbSeq = bb.seq;
            info.start = bb.start;
            info.term = pc;
            info.end = pc + len;
            info.termClass = rec.ins.klass();
            info.artificialSplit = is_split;
            info.termSeq = seq;
            info.fetchDoneAt = fetch_at;
            info.nextStart = rec.nextPc;
            hooks_.onBBFetched(info);
        }

        // ---- rename / dispatch --------------------------------------------
        const bool is_mem = rec.isLoad || rec.isStore;
        Cycle dispatch_lower = std::max<Cycle>(
            {fetch_at + kDecodeDepth, rob.allocReadyAt(), iq.allocReadyAt()});
        if (is_mem)
            dispatch_lower = std::max(dispatch_lower, lsq.allocReadyAt());
        const Cycle dispatch_at = dispatch_w.reserve(dispatch_lower);
        fq.push(dispatch_at);

        // ---- issue / execute ----------------------------------------------
        const isa::RegUse &use = rec.use;
        Cycle op_ready = 0;
        for (unsigned i = 0; i < use.nsrc; ++i)
            op_ready = std::max(op_ready, reg_ready[use.srcs[i]]);
        const Cycle issue_lower = std::max(dispatch_at + 1, op_ready);

        Cycle issue_at = 0, complete_at = 0;
        switch (rec.ins.klass()) {
          case InstrClass::IntDiv:
            issue_at = alu.acquire(issue_lower, cfg_.intDivLat);
            complete_at = issue_at + cfg_.intDivLat;
            break;
          case InstrClass::IntMul:
            issue_at = alu.acquire(issue_lower, 1);
            complete_at = issue_at + cfg_.intMulLat;
            break;
          case InstrClass::FpAlu:
            issue_at = fpu.acquire(issue_lower, 1);
            complete_at = issue_at + cfg_.fpAluLat;
            break;
          case InstrClass::FpMul:
            issue_at = fpu.acquire(issue_lower, 1);
            complete_at = issue_at + cfg_.fpMulLat;
            break;
          case InstrClass::FpDiv:
            issue_at = fpu.acquire(issue_lower, cfg_.fpDivLat);
            complete_at = issue_at + cfg_.fpDivLat;
            break;
          case InstrClass::Load:
          case InstrClass::Return: {
            issue_at = ld_port.acquire(issue_lower, 1);
            const Cycle agu_done = issue_at + 1;
            const bool forwards =
                machine_.replaying()
                    ? rec.coverDist != 0 && rec.coverDist < seq - drained_seq
                    : sb_.covers(rec.memAddr, rec.memSize);
            if (forwards) {
                complete_at = agu_done + 1; // store-queue forwarding
            } else {
                const auto r = memsys_.access(
                    rec.memAddr, mem::AccessType::DataRead, agu_done,
                    coreId_);
                complete_at = r.completeAt;
            }
            ++res.loads;
            break;
          }
          case InstrClass::Store:
          case InstrClass::Call:
          case InstrClass::CallIndirect:
            issue_at = st_port.acquire(issue_lower, 1);
            complete_at = issue_at + 1; // address + data capture
            ++res.stores;
            break;
          default:
            issue_at = alu.acquire(issue_lower, 1);
            complete_at = issue_at + cfg_.intAluLat;
            break;
        }
        iq.push(issue_at + 1);
        if (use.dst >= 0)
            reg_ready[use.dst] = complete_at;

        if (rec.isStore)
            pendingStores_.push_back({seq, rec.memAddr});

        // ---- branch resolution / redirect -----------------------------------
        if (is_cf && rec.ins.klass() != InstrClass::Halt) {
            const bool taken = rec.ins.isBranch() ? rec.taken : true;
            Prediction pred;
            const bool wrong = predictor_.predictAndTrain(
                rec.ins, pc, taken, rec.nextPc, &pred);
            if (wrong) {
                const Cycle resolve = complete_at;
                fetch_resume = std::max(fetch_resume,
                                        resolve + cfg_.redirectPenalty);
                ++res.mispredicts;
                if (cfg_.modelWrongPath) {
                    // The front end keeps streaming down the predicted
                    // (wrong) path until the branch resolves, dirtying
                    // the I-side structures. The fetched work itself is
                    // squashed.
                    Addr wpc = pred.valid && pred.taken
                                   ? pred.target
                                   : rec.ins.fallThrough(pc);
                    if (wpc == rec.nextPc)
                        wpc = rec.ins.fallThrough(pc); // target mispredict
                    Addr wline = kNoAddr;
                    Cycle t = fetch_at;
                    for (unsigned i = 0;
                         i < cfg_.wrongPathInstrs && wpc != rec.nextPc;
                         ++i) {
                        const prog::Predecoded *wins =
                            machine_.predecode(wpc);
                        if (!wins)
                            break;
                        const Addr line = wpc >> line_shift;
                        if (line != wline) {
                            wline = line;
                            memsys_.access(line << line_shift,
                                           mem::AccessType::InstrFetch, t,
                                           coreId_);
                            ++t;
                        }
                        ++res.wrongPathFetches;
                        if (wins->ins.isControlFlow())
                            break; // cannot follow further without resolving
                        wpc = wpc + wins->len;
                    }
                }
                hooks_.onMispredictResolved(resolve);
            }
        }

        // ---- commit ----------------------------------------------------------
        Cycle commit_lower = std::max<Cycle>(
            {complete_at + 1, fetch_at + cfg_.frontendDepth, prev_commit});
        if (is_term)
            commit_lower = hooks_.commitReadyAt(bb.seq, commit_lower);
        const Cycle commit_at = commit_w.reserve(commit_lower);
        prev_commit = commit_at;
        lastCommit_ = commit_at;
        rob.push(commit_at);
        if (is_mem)
            lsq.push(commit_at);

        ++res.instrs;
        if (is_cf) {
            ++res.committedBranches;
            unique_branches.insert(pc);
        }
        if (rec.isSyscall)
            hooks_.onSyscall(rec.syscallNo, commit_at);

        // ---- external interrupts (taken at validated BB boundaries) ----
        if (is_term && commit_at >= next_interrupt) {
            fetch_resume = std::max(fetch_resume,
                                    commit_at + cfg_.interruptPenalty);
            next_interrupt = commit_at + cfg_.interruptInterval;
            ++res.interrupts;
            hooks_.onInterrupt(commit_at);
        }

        // ---- validation & store release ---------------------------------------
        const bool defer = hooks_.validationActive();
        if (is_term) {
            if (!hooks_.validateBB(bb.seq, rec.nextPc, commit_at)) {
                res.violation = Violation{commit_at, pc, seq,
                                          hooks_.violationReason()};
                // Tainted stores of the offending block never reach memory.
                sb_.squash(seq - bb.instrs + 1);
                break;
            }
            sb_.drain(mem_, seq);
            drainStores(seq, commit_at);
            drained_seq = seq;
            bb = BBState{rec.nextPc, 0, 0, ++bb_counter};
        } else if (!defer) {
            sb_.drain(mem_, seq);
            drainStores(seq, commit_at);
            drained_seq = seq;
        }

        if (rec.halted)
            break;
        // The instruction budget stops at the next block boundary, the
        // same points where interrupts / context switches are taken
        // (Sec. IV.A), so a resumed run() restarts at a known entry.
        if (is_term && cfg_.maxInstrs && res.instrs >= cfg_.maxInstrs)
            break;
    }

    return false;
}

RunResult
Core::finish(RunState &st)
{
    // An instruction-budget stop can land mid-block; release the already
    // executed stores so a follow-up run() (e.g., after a context switch)
    // resumes from consistent state.
    if (!st.res.violation) {
        sb_.drain(mem_, st.seq);
        drainStores(st.seq, st.prevCommit);
    }

    RunResult res = std::move(st.res);
    res.cycles = st.prevCommit - st.clockStart;
    clockBase_ = st.prevCommit;
    res.uniqueBranches = st.uniqueBranches.size();
    res.halted = machine_.halted() && !res.violation;
    state_.reset();
    return res;
}

} // namespace rev::cpu
