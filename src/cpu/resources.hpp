/**
 * @file
 * Small timing-resource helpers for the timestamp-based OoO model:
 * per-cycle width limiters, occupancy rings (ROB/IQ/LSQ/fetch queue), and
 * functional-unit pools.
 */

#ifndef REV_CPU_RESOURCES_HPP
#define REV_CPU_RESOURCES_HPP

#include <vector>

#include "common/logging.hpp"
#include "common/types.hpp"

namespace rev::cpu
{

/**
 * Enforces "at most W events per cycle" for an in-order stage. Callers
 * must present non-decreasing lower bounds.
 */
class WidthLimiter
{
  public:
    explicit WidthLimiter(unsigned width) : width_(width)
    {
        REV_ASSERT(width_ > 0, "WidthLimiter: zero width");
    }

    /** Reserve a slot at the earliest cycle >= @p lower. */
    Cycle
    reserve(Cycle lower)
    {
        if (lower > cycle_) {
            cycle_ = lower;
            used_ = 0;
        }
        if (used_ == width_) {
            ++cycle_;
            used_ = 0;
        }
        ++used_;
        return cycle_;
    }

    void
    reset()
    {
        cycle_ = 0;
        used_ = 0;
    }

  private:
    unsigned width_;
    Cycle cycle_ = 0;
    unsigned used_ = 0;
};

/**
 * A structure with N slots allocated in order and freed at known cycles
 * (ROB, issue queue, LSQ, fetch queue). allocReadyAt() gives the earliest
 * cycle a new allocation can proceed; push() records when the slot being
 * allocated will free.
 */
class OccupancyRing
{
  public:
    explicit OccupancyRing(unsigned capacity) : freeAt_(capacity, 0)
    {
        REV_ASSERT(capacity > 0, "OccupancyRing: zero capacity");
    }

    /** Earliest cycle the oldest slot frees (0 if never used). */
    Cycle allocReadyAt() const { return freeAt_[head_]; }

    /** Consume the oldest slot; it will free at @p freed_at. */
    void
    push(Cycle freed_at)
    {
        freeAt_[head_] = freed_at;
        head_ = (head_ + 1) % freeAt_.size();
    }

    void
    reset()
    {
        std::fill(freeAt_.begin(), freeAt_.end(), 0);
        head_ = 0;
    }

  private:
    std::vector<Cycle> freeAt_;
    std::size_t head_ = 0;
};

/**
 * A pool of identical functional units.
 */
class FuPool
{
  public:
    explicit FuPool(unsigned count) : freeAt_(count, 0)
    {
        REV_ASSERT(count > 0, "FuPool: zero units");
    }

    /**
     * Acquire the earliest-available unit at or after @p ready; the unit
     * stays busy @p busy_cycles (1 for pipelined units). Returns the issue
     * cycle.
     */
    Cycle
    acquire(Cycle ready, unsigned busy_cycles)
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < freeAt_.size(); ++i)
            if (freeAt_[i] < freeAt_[best])
                best = i;
        const Cycle start = std::max(ready, freeAt_[best]);
        freeAt_[best] = start + busy_cycles;
        return start;
    }

    void reset() { std::fill(freeAt_.begin(), freeAt_.end(), 0); }

  private:
    std::vector<Cycle> freeAt_;
};

} // namespace rev::cpu

#endif // REV_CPU_RESOURCES_HPP
