/**
 * @file
 * The out-of-order core model.
 *
 * Execute-functional, timing-directed: architectural execution happens in
 * program order through the embedded Machine (supplying values and actual
 * branch outcomes), while a timestamp-propagation timing model with
 * explicit finite resources (ROB, IQ, LSQ, fetch queue, FU pools,
 * per-stage widths) computes when each instruction fetches, issues,
 * completes, and commits. Commit is in order; stores are held in the
 * StoreBuffer and released to memory at commit (base core) or at basic-
 * block validation time (REV, Requirement R5). Branch mispredictions stall
 * the front end until the branch resolves plus a redirect penalty;
 * mispredicted-path instructions are not themselves simulated (DESIGN.md,
 * timing-fidelity notes).
 */

#ifndef REV_CPU_CORE_HPP
#define REV_CPU_CORE_HPP

#include <functional>
#include <optional>
#include <string>
#include <unordered_set>

#include "cpu/config.hpp"
#include "cpu/predictor.hpp"
#include "cpu/resources.hpp"
#include "mem/memsys.hpp"
#include "program/interp.hpp"
#include "validate/validator.hpp"

namespace rev::cpu
{

/** A detected run-time validation failure. */
struct Violation
{
    Cycle cycle = 0;
    Addr pc = 0;
    SeqNum seq = 0;
    std::string reason;
};

/** Results of one simulation run. */
struct RunResult
{
    Cycle cycles = 0;
    u64 instrs = 0;
    u64 committedBranches = 0; ///< control-flow instructions committed
    u64 uniqueBranches = 0;    ///< distinct control-flow PCs (Fig. 9)
    u64 mispredicts = 0;
    u64 loads = 0;
    u64 stores = 0;
    u64 interrupts = 0; ///< external interrupts taken
    u64 wrongPathFetches = 0; ///< wrong-path instructions fetched
    bool halted = false;
    std::optional<Violation> violation;

    /** cycles counts only this run() invocation (quantum). */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(instrs) / cycles : 0.0;
    }
};

/**
 * The core. One instance simulates one program run.
 */
class Core
{
  public:
    /**
     * @param program Program to run (must already be loaded into @p mem).
     * @param mem     Functional memory image.
     * @param memsys  Timing memory hierarchy.
     * @param cfg     Core configuration.
     * @param hooks   Validation backend, or nullptr for the base machine
     *                (an internal NullValidator stands in, so the core
     *                never tests the pointer again).
     * @param core_id Memory-system port this core issues its traffic
     *                through (multicore: one port per core).
     */
    Core(const prog::Program &program, SparseMemory &mem,
         mem::MemorySystem &memsys, const CoreConfig &cfg = {},
         validate::Validator *hooks = nullptr, unsigned core_id = 0);

    /**
     * Hook invoked before each architectural step; attack injectors use it
     * to tamper with memory / machine state at a precise point.
     * Arguments: committed-instruction index and next PC.
     */
    using PreStepHook = std::function<void(u64 instr_index, Addr pc)>;
    void setPreStepHook(PreStepHook hook) { preStep_ = std::move(hook); }

    /**
     * Run to halt, violation, or the configured instruction budget.
     * Resumes a run paused by runUntil(), continuing its accumulated
     * counters and timing frontiers so the final RunResult is identical
     * to an uninterrupted run's.
     */
    RunResult run();

    /**
     * Run until just before the pre-step of committed-instruction index
     * @p index (cumulative across pauses of the same logical run). A
     * subsequent run() — here or in a fork restored from saveState() —
     * sees @p index as its first pre-step, exactly like a cold run
     * arriving at the same point, so injector hooks fire identically.
     *
     * @return true when paused at @p index; false when the run finished
     *         first (halt / violation / budget), with the final result
     *         stored to @p out when non-null.
     */
    bool runUntil(u64 index, RunResult *out = nullptr);

    /** pause_before value meaning "never pause" (see runSlice()). */
    static constexpr u64 kRunToEnd = ~u64{0};

    /**
     * One scheduling slice: run (or resume) until the run ends or the
     * cumulative committed-instruction count reaches @p pause_before,
     * whichever comes first. run() is runSlice(kRunToEnd, ...); unlike
     * runUntil() this carries run()'s full preamble (PreStepHook replay
     * cancellation), so a multicore scheduler can time-slice replayed
     * runs. @return true when paused, false when the run finished (final
     * result stored to @p out when non-null).
     */
    bool runSlice(u64 pause_before, RunResult *out = nullptr);

    /** A runUntil()/runSlice() pause is outstanding (run() resumes it). */
    bool paused() const { return state_.has_value(); }

    /** Committed instructions of the paused run (0 when not paused). */
    u64 committedInstrs() const { return state_ ? state_->res.instrs : 0; }

    prog::Machine &machine() { return machine_; }
    const prog::Machine &machine() const { return machine_; }
    const BranchPredictor &predictor() const { return predictor_; }

    /**
     * Commit cycle of the most recently committed instruction (equals the
     * run's clock base before anything commits). A PreStepHook can read
     * it to timestamp a tamper injection; a later violation's cycle minus
     * this value is the detection latency.
     */
    Cycle lastCommitCycle() const { return lastCommit_; }

    struct BBState
    {
        Addr start = 0;
        unsigned instrs = 0;
        unsigned stores = 0;
        BBSeq seq = 0;
    };

    /** Pending (not yet drained) store records for timing. */
    struct PendingStore
    {
        SeqNum seq;
        Addr addr;
    };

    /**
     * The run loop's complete mid-flight state: resource frontiers,
     * scoreboard, sequence counters, basic-block tracker, and the
     * accumulated partial result. Plain-copyable, so a paused run can be
     * duplicated into a fork.
     */
    struct RunState
    {
        RunState(const CoreConfig &cfg, Addr pc, Cycle clock_base);

        WidthLimiter fetchW, dispatchW, commitW;
        OccupancyRing rob, iq, lsq, fq;
        FuPool alu, fpu, ldPort, stPort;
        std::array<Cycle, isa::kNumArchRegs> regReady{};
        std::unordered_set<Addr> uniqueBranches;
        Cycle fetchResume;   ///< redirect lower bound
        Cycle fetchFrontier; ///< last fetch cycle
        Addr lastLine = kNoAddr;
        Cycle lineReady;
        Cycle prevCommit;
        SeqNum seq = 0;
        SeqNum drainedSeq = 0;
        BBState bb;
        BBSeq bbCounter = 1;
        Cycle nextInterrupt;
        Cycle clockStart; ///< clockBase_ when this logical run began
        RunResult res;    ///< accumulated across pauses
    };

    /**
     * Everything a fork needs to continue this core's run mid-flight:
     * architectural registers, store buffer, predictor, store-drain
     * queue, cycle frontiers, and the paused run-loop state. The memory
     * image and the validator/memory-system state the core references
     * are snapshotted separately (see core/snapshot.hpp).
     */
    struct Snapshot
    {
        std::array<u64, isa::kNumArchRegs> regs{};
        Addr pc = 0;
        bool halted = false;
        prog::StoreBuffer storeBuffer;
        BranchPredictor predictor;
        std::deque<PendingStore> pendingStores;
        Cycle clockBase = 0;
        Cycle lastCommit = 0;
        std::optional<RunState> runState;
    };

    /** Capture the core-side state of a paused (or idle) run. */
    Snapshot saveState() const;

    /**
     * Adopt state captured by saveState() on a core over the same
     * program/config whose memory image this core's Machine references a
     * fork of. A following run() resumes exactly where the source paused.
     */
    void restoreState(const Snapshot &snap);

  private:
    /**
     * The timing/commit loop. Runs @p st forward until the run ends
     * (returns false) or, when @p pause_before is hit, pauses just
     * before that instruction's pre-step (returns true).
     */
    bool loop(RunState &st, u64 pause_before);

    /** Tail drains + result finalization; clears the paused state. */
    RunResult finish(RunState &st);

    /** Issue the D-cache write traffic for stores released to memory. */
    void drainStores(SeqNum up_to, Cycle at);

    const prog::Program &program_;
    SparseMemory &mem_;
    mem::MemorySystem &memsys_;
    unsigned coreId_ = 0;
    CoreConfig cfg_;
    validate::NullValidator nullHooks_; ///< stand-in when no backend given
    validate::Validator &hooks_;

    prog::Machine machine_;
    prog::StoreBuffer sb_;
    BranchPredictor predictor_;
    PreStepHook preStep_;

    std::deque<PendingStore> pendingStores_;

    /** Present between a runUntil() pause and the resuming run(). */
    std::optional<RunState> state_;

    /** End cycle of the previous run() (resumed runs continue from it). */
    Cycle clockBase_ = 0;

    /** Mirror of the run loop's commit frontier (see lastCommitCycle()). */
    Cycle lastCommit_ = 0;
};

} // namespace rev::cpu

#endif // REV_CPU_CORE_HPP
