/**
 * @file
 * The out-of-order core model.
 *
 * Execute-functional, timing-directed: architectural execution happens in
 * program order through the embedded Machine (supplying values and actual
 * branch outcomes), while a timestamp-propagation timing model with
 * explicit finite resources (ROB, IQ, LSQ, fetch queue, FU pools,
 * per-stage widths) computes when each instruction fetches, issues,
 * completes, and commits. Commit is in order; stores are held in the
 * StoreBuffer and released to memory at commit (base core) or at basic-
 * block validation time (REV, Requirement R5). Branch mispredictions stall
 * the front end until the branch resolves plus a redirect penalty;
 * mispredicted-path instructions are not themselves simulated (DESIGN.md,
 * timing-fidelity notes).
 */

#ifndef REV_CPU_CORE_HPP
#define REV_CPU_CORE_HPP

#include <functional>
#include <optional>
#include <string>
#include <unordered_set>

#include "cpu/config.hpp"
#include "cpu/predictor.hpp"
#include "cpu/resources.hpp"
#include "mem/memsys.hpp"
#include "program/interp.hpp"
#include "validate/validator.hpp"

namespace rev::cpu
{

/** A detected run-time validation failure. */
struct Violation
{
    Cycle cycle = 0;
    Addr pc = 0;
    SeqNum seq = 0;
    std::string reason;
};

/** Results of one simulation run. */
struct RunResult
{
    Cycle cycles = 0;
    u64 instrs = 0;
    u64 committedBranches = 0; ///< control-flow instructions committed
    u64 uniqueBranches = 0;    ///< distinct control-flow PCs (Fig. 9)
    u64 mispredicts = 0;
    u64 loads = 0;
    u64 stores = 0;
    u64 interrupts = 0; ///< external interrupts taken
    u64 wrongPathFetches = 0; ///< wrong-path instructions fetched
    bool halted = false;
    std::optional<Violation> violation;

    /** cycles counts only this run() invocation (quantum). */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(instrs) / cycles : 0.0;
    }
};

/**
 * The core. One instance simulates one program run.
 */
class Core
{
  public:
    /**
     * @param program Program to run (must already be loaded into @p mem).
     * @param mem     Functional memory image.
     * @param memsys  Timing memory hierarchy.
     * @param cfg     Core configuration.
     * @param hooks   Validation backend, or nullptr for the base machine
     *                (an internal NullValidator stands in, so the core
     *                never tests the pointer again).
     */
    Core(const prog::Program &program, SparseMemory &mem,
         mem::MemorySystem &memsys, const CoreConfig &cfg = {},
         validate::Validator *hooks = nullptr);

    /**
     * Hook invoked before each architectural step; attack injectors use it
     * to tamper with memory / machine state at a precise point.
     * Arguments: committed-instruction index and next PC.
     */
    using PreStepHook = std::function<void(u64 instr_index, Addr pc)>;
    void setPreStepHook(PreStepHook hook) { preStep_ = std::move(hook); }

    /** Run to halt, violation, or the configured instruction budget. */
    RunResult run();

    prog::Machine &machine() { return machine_; }
    const prog::Machine &machine() const { return machine_; }
    const BranchPredictor &predictor() const { return predictor_; }

    /**
     * Commit cycle of the most recently committed instruction (equals the
     * run's clock base before anything commits). A PreStepHook can read
     * it to timestamp a tamper injection; a later violation's cycle minus
     * this value is the detection latency.
     */
    Cycle lastCommitCycle() const { return lastCommit_; }

  private:
    struct BBState
    {
        Addr start = 0;
        unsigned instrs = 0;
        unsigned stores = 0;
        BBSeq seq = 0;
    };

    /** Issue the D-cache write traffic for stores released to memory. */
    void drainStores(SeqNum up_to, Cycle at);

    const prog::Program &program_;
    SparseMemory &mem_;
    mem::MemorySystem &memsys_;
    CoreConfig cfg_;
    validate::NullValidator nullHooks_; ///< stand-in when no backend given
    validate::Validator &hooks_;

    prog::Machine machine_;
    prog::StoreBuffer sb_;
    BranchPredictor predictor_;
    PreStepHook preStep_;

    /** Pending (not yet drained) store records for timing. */
    struct PendingStore
    {
        SeqNum seq;
        Addr addr;
    };
    std::deque<PendingStore> pendingStores_;

    /** End cycle of the previous run() (resumed runs continue from it). */
    Cycle clockBase_ = 0;

    /** Mirror of the run loop's commit frontier (see lastCommitCycle()). */
    Cycle lastCommit_ = 0;
};

} // namespace rev::cpu

#endif // REV_CPU_CORE_HPP
