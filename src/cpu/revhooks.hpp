/**
 * @file
 * Interface between the out-of-order core and the REV machinery.
 *
 * The core is REV-agnostic: it reports front-end and commit events through
 * this interface and respects the commit-gating / store-deferral answers.
 * The REV engine (src/core) implements it; a base-case core runs with a
 * null hooks pointer.
 */

#ifndef REV_CPU_REVHOOKS_HPP
#define REV_CPU_REVHOOKS_HPP

#include <string>

#include "isa/instr.hpp"

namespace rev::cpu
{

/** Front-end description of a dynamic basic block whose terminator was
 *  just fetched. */
struct BBFetchInfo
{
    BBSeq bbSeq = 0;       ///< dynamic basic-block instance id
    Addr start = 0;        ///< first instruction address
    Addr term = 0;         ///< terminating instruction address
    Addr end = 0;          ///< first byte past the terminator
    isa::InstrClass termClass = isa::InstrClass::Nop;
    bool artificialSplit = false; ///< ended by the split rule, not control flow
    SeqNum termSeq = 0;    ///< sequence number of the terminator
    Cycle fetchDoneAt = 0; ///< cycle the terminator left the fetch stage

    /**
     * Start address of the next dynamic basic block. The hardware would
     * use the predicted target here (probing for a partial miss); the
     * model uses the resolved target, which matches whenever the BTB
     * predicts correctly (the dominant case).
     */
    Addr nextStart = 0;
};

/**
 * REV integration points.
 */
class RevHooks
{
  public:
    virtual ~RevHooks() = default;

    /**
     * The front end finished fetching a basic block: the CHG has consumed
     * its bytes and the SC is probed (starting a fill on a miss).
     */
    virtual void onBBFetched(const BBFetchInfo &info) = 0;

    /**
     * Earliest cycle the terminator of @p bb may commit: the generated
     * hash must be available (CHG latency) and the reference signature
     * must be present in the SC (miss service time). @p earliest is the
     * commit time the pipeline could otherwise achieve.
     */
    virtual Cycle commitReadyAt(BBSeq bb, Cycle earliest) = 0;

    /**
     * The terminator of @p bb commits now: authenticate the block.
     * @param actual_target Where control actually flows next.
     * @return false on a validation failure (an exception is raised).
     */
    virtual bool validateBB(BBSeq bb, Addr actual_target,
                            Cycle commit_cycle) = 0;

    /** A mispredicted control transfer resolved: CHG flushed, in-flight
     *  SC prefetches for the wrong path canceled. */
    virtual void onMispredictResolved(Cycle resolve_cycle) = 0;

    /** An external interrupt was taken (after the current block
     *  validated, Sec. IV.A); in-flight front-end REV state flushes. */
    virtual void onInterrupt(Cycle cycle) { (void)cycle; }

    /** A SYSCALL committed (services 1/2 disable/enable REV, Sec. VII). */
    virtual void onSyscall(u8 service, Cycle commit_cycle) = 0;

    /** True while REV is active (stores defer until BB validation). */
    virtual bool validationActive() const = 0;

    /** Human-readable reason of the most recent validation failure. */
    virtual std::string violationReason() const = 0;
};

} // namespace rev::cpu

#endif // REV_CPU_REVHOOKS_HPP
