file(REMOVE_RECURSE
  "CMakeFiles/rev_cpu.dir/core.cpp.o"
  "CMakeFiles/rev_cpu.dir/core.cpp.o.d"
  "CMakeFiles/rev_cpu.dir/predictor.cpp.o"
  "CMakeFiles/rev_cpu.dir/predictor.cpp.o.d"
  "librev_cpu.a"
  "librev_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
