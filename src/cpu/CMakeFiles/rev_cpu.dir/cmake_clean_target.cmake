file(REMOVE_RECURSE
  "librev_cpu.a"
)
