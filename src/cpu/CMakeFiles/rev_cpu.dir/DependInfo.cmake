
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/core.cpp" "src/cpu/CMakeFiles/rev_cpu.dir/core.cpp.o" "gcc" "src/cpu/CMakeFiles/rev_cpu.dir/core.cpp.o.d"
  "/root/repo/src/cpu/predictor.cpp" "src/cpu/CMakeFiles/rev_cpu.dir/predictor.cpp.o" "gcc" "src/cpu/CMakeFiles/rev_cpu.dir/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/validate/CMakeFiles/rev_validate.dir/DependInfo.cmake"
  "/root/repo/src/program/CMakeFiles/rev_program.dir/DependInfo.cmake"
  "/root/repo/src/mem/CMakeFiles/rev_mem.dir/DependInfo.cmake"
  "/root/repo/src/isa/CMakeFiles/rev_isa.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/rev_common.dir/DependInfo.cmake"
  "/root/repo/src/sig/CMakeFiles/rev_sig.dir/DependInfo.cmake"
  "/root/repo/src/crypto/CMakeFiles/rev_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
