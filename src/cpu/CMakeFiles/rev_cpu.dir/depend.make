# Empty dependencies file for rev_cpu.
# This may be replaced when dependencies are built.
