/**
 * @file
 * Out-of-order core configuration (defaults mirror Table 2 of the paper).
 */

#ifndef REV_CPU_CONFIG_HPP
#define REV_CPU_CONFIG_HPP

#include "cpu/predictor.hpp"
#include "program/cfg.hpp"

namespace rev::cpu
{

/** Core pipeline / structure parameters. */
struct CoreConfig
{
    unsigned fetchWidth = 4;
    unsigned fetchQueueSize = 32;
    unsigned dispatchWidth = 4;
    unsigned issueWidth = 8;
    unsigned commitWidth = 4;

    unsigned robSize = 128;
    unsigned lsqSize = 92;
    unsigned iqSize = 64;
    unsigned numPhysRegs = 256; ///< unified register file (informational:
                                ///< never binding with a 128-entry ROB)

    /**
     * Pipeline stages between the final fetch stage and commit (the paper's
     * S, assumed 16). The CHG latency H is overlapped against this
     * (Sec. VI).
     */
    unsigned frontendDepth = 16;

    /** Front-end refill cycles after a branch resolves mispredicted. */
    unsigned redirectPenalty = 3;

    // Functional unit latencies (cycles).
    unsigned intAluLat = 1;
    unsigned intMulLat = 3;
    unsigned intDivLat = 12;
    unsigned fpAluLat = 3;
    unsigned fpMulLat = 4;
    unsigned fpDivLat = 12;

    // Functional unit counts (Table 2: 2 ALU, 2 FPU, 2 load + 2 store).
    unsigned numIntAlu = 2;
    unsigned numFpu = 2;
    unsigned numLoadPorts = 2;
    unsigned numStorePorts = 2;

    /**
     * Artificial basic-block split limits; must match the limits used when
     * building the signature tables (the front end counts instructions and
     * stores and forces an SC lookup at the boundary, Sec. IV.A).
     */
    prog::SplitLimits splitLimits;

    PredictorConfig predictor;

    /**
     * External-interrupt injection period in cycles (0 = none). Interrupts
     * are taken at basic-block boundaries, after the current block has
     * been validated (Sec. IV.A), and flush the front end.
     */
    u64 interruptInterval = 0;

    /** Front-end flush + handler entry/exit cost per interrupt. */
    unsigned interruptPenalty = 40;

    /**
     * Model wrong-path instruction fetch after a misprediction: the
     * front end keeps fetching down the predicted path until the branch
     * resolves, polluting the I-cache/TLB (and triggering SC prefetches
     * that get canceled, Sec. IV.A). Bounded by wrongPathInstrs.
     */
    bool modelWrongPath = true;
    unsigned wrongPathInstrs = 12;

    /**
     * Next-line instruction prefetcher: an L1I miss also requests the
     * following line at Prefetch priority (below SC fills, Sec. IV.A).
     */
    bool nextLinePrefetch = true;

    /** Stop at the first basic-block boundary after this many committed
     *  instructions (0 = run to halt). Stopping at block granularity
     *  keeps the machine at a validated entry point, so run() can be
     *  resumed (context switches, scheduling quanta). */
    u64 maxInstrs = 0;
};

} // namespace rev::cpu

#endif // REV_CPU_CONFIG_HPP
