/**
 * @file
 * Shared code-emission internals of the workload generators.
 *
 * The synthetic-workload generator (generator.cpp) and the
 * preemptive-scheduler workload (scheduler.cpp) emit function bodies
 * with the same register conventions and construct emitters; this header
 * is their common toolbox. It is internal to src/workloads/ — tools and
 * tests consume the generators through generator.hpp / scheduler.hpp.
 */

#ifndef REV_WORKLOADS_GEN_INTERNAL_HPP
#define REV_WORKLOADS_GEN_INTERNAL_HPP

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/random.hpp"
#include "program/assembler.hpp"
#include "workloads/profile.hpp"

namespace rev::workloads::gendetail
{

/** Register conventions of generated code. */
constexpr u8 kIter = 20;   ///< main's outer loop counter
constexpr u8 kLcg = 21;    ///< global LCG state (data-dependent control)
constexpr u8 kDataBase = 22;
constexpr u8 kCursor = 23; ///< data cursor
constexpr u8 kLoop = 15;   ///< inner-loop trip counter
constexpr u8 kT0 = 16, kT1 = 17; ///< scratch (tests / addressing)

/** Builder state threaded through the emitters. */
struct Gen
{
    const WorkloadProfile &prof;
    prog::Assembler &a;
    Rng rng;
    unsigned labelCounter = 0;
    u8 nextDst = 1; ///< rotates r1..r12
    /** Deferred switch tables: (table label, case labels). */
    std::vector<std::pair<std::string, std::vector<std::string>>> tables;

    std::string
    fresh(const char *stem)
    {
        return std::string(stem) + "_" + std::to_string(labelCounter++);
    }

    u8
    dst()
    {
        const u8 r = nextDst;
        nextDst = nextDst == 12 ? 1 : nextDst + 1;
        return r;
    }
};

inline std::string
fnLabel(unsigned idx)
{
    return "fn_" + std::to_string(idx);
}

/** Advance the in-register LCG (the source of "data-dependent" control). */
inline void
lcgStep(Gen &g)
{
    g.a.muli(kLcg, kLcg, 1103515245);
    g.a.addi(kLcg, kLcg, 12345);
}

/**
 * r16 = 1 with probability @p p, using fresh LCG bits.
 */
inline void
emitChance(Gen &g, double p)
{
    const int threshold =
        std::clamp(static_cast<int>(p * 256.0), 1, 255);
    lcgStep(g);
    g.a.shri(kT0, kLcg, static_cast<i32>(8 + g.rng.below(12)));
    g.a.andi(kT0, kT0, 255);
    g.a.slti(kT0, kT0, threshold);
}

/** Emit one data-memory access (load or store) plus a cursor advance. */
inline void
emitMemAccess(Gen &g, bool is_store)
{
    const WorkloadProfile &p = g.prof;
    g.a.add(kT1, kDataBase, kCursor);
    const i32 off = static_cast<i32>(g.rng.below(8)) * 8;
    const double width = g.rng.uniform();
    if (is_store) {
        if (width < 0.15)
            g.a.sb(g.dst(), kT1, off);
        else if (width < 0.40)
            g.a.sw(g.dst(), kT1, off);
        else
            g.a.st(g.dst(), kT1, off);
    } else {
        if (width < 0.15)
            g.a.lb(g.dst(), kT1, off);
        else if (width < 0.40)
            g.a.lw(g.dst(), kT1, off);
        else
            g.a.ld(g.dst(), kT1, off);
    }

    const u32 mask = static_cast<u32>(p.dataFootprint - 1) & ~7u;
    if (p.dataStride != 0) {
        g.a.addi(kCursor, kCursor, static_cast<i32>(p.dataStride));
        g.a.andi(kCursor, kCursor, static_cast<i32>(mask));
    } else {
        // Irregular: hash the LCG into an offset.
        g.a.shri(kT1, kLcg, 7);
        g.a.andi(kT1, kT1, static_cast<i32>(mask));
        g.a.or_(kCursor, kT1, 0);
    }
}

/** Emit ~len instructions of straight-line work with the profile's mix. */
inline void
emitStraight(Gen &g, unsigned len)
{
    const WorkloadProfile &p = g.prof;
    unsigned emitted = 0;
    while (emitted < len) {
        const double pick = g.rng.uniform();
        if (pick < p.loadFrac) {
            emitMemAccess(g, false);
            emitted += 3;
        } else if (pick < p.loadFrac + p.storeFrac) {
            emitMemAccess(g, true);
            emitted += 3;
        } else if (pick < p.loadFrac + p.storeFrac + p.fpFrac) {
            const u8 d = g.dst();
            if (g.rng.chance(0.5))
                g.a.fadd(d, 8, 9);
            else
                g.a.fmul(d, 8, 10);
            ++emitted;
        } else if (pick <
                   p.loadFrac + p.storeFrac + p.fpFrac + p.mulFrac) {
            const u8 d = g.dst();
            if (g.rng.chance(0.15))
                g.a.divu(d, d, 3);
            else
                g.a.mul(d, d, 5);
            ++emitted;
        } else {
            // Integer ALU with short dependency chains.
            const u8 d = g.dst();
            switch (g.rng.below(4)) {
              case 0:
                g.a.addi(d, d, static_cast<i32>(g.rng.below(100)));
                break;
              case 1:
                g.a.xor_(d, d, static_cast<u8>(1 + g.rng.below(12)));
                break;
              case 2:
                g.a.shli(d, d, static_cast<i32>(g.rng.below(8)));
                break;
              default:
                g.a.add(d, d, static_cast<u8>(1 + g.rng.below(12)));
                break;
            }
            ++emitted;
        }
    }
}

/** if/else diamond steered by the LCG with the profile's bias. */
inline void
emitDiamond(Gen &g)
{
    const std::string l_then = g.fresh("then");
    const std::string l_join = g.fresh("join");
    emitChance(g, g.prof.branchBias);
    g.a.bne(kT0, 0, l_then);
    emitStraight(g, 2 + g.rng.below(3));
    g.a.jmp(l_join);
    g.a.label(l_then);
    emitStraight(g, 2 + g.rng.below(3));
    g.a.label(l_join);
}

/** Counted inner loop (locality amplifier). */
inline void
emitLoop(Gen &g)
{
    const std::string l_top = g.fresh("loop");
    const unsigned iters =
        std::max<unsigned>(2, g.prof.loopIters + g.rng.below(4));
    g.a.movi(kLoop, static_cast<i32>(iters));
    g.a.label(l_top);
    emitStraight(g, g.prof.straightLen);
    g.a.addi(kLoop, kLoop, -1);
    g.a.bne(kLoop, 0, l_top);
}

/** Computed-jump switch over a per-function jump table (4 cases). */
inline void
emitSwitch(Gen &g)
{
    const std::string tbl = g.fresh("swtbl");
    const std::string join = g.fresh("swjoin");
    std::vector<std::string> cases;
    for (int c = 0; c < 4; ++c)
        cases.push_back(g.fresh("case"));

    // Case selection follows the (slowly moving) data cursor rather than
    // the per-step LCG: real switches are phase-biased, not uniform.
    g.a.shri(kT0, kCursor, static_cast<i32>(11 + g.rng.below(4)));
    g.a.andi(kT0, kT0, 3);
    g.a.shli(kT0, kT0, 3);
    g.a.la(kT1, tbl);
    g.a.add(kT1, kT1, kT0);
    g.a.ld(kT1, kT1, 0);
    const Addr site = g.a.jmpr(kT1);
    g.a.annotateIndirect(site, cases);

    for (const auto &c : cases) {
        g.a.label(c);
        emitStraight(g, 1 + g.rng.below(3));
        g.a.jmp(join);
    }
    g.a.label(join);
    g.tables.emplace_back(tbl, cases);
}

/** A dynamically gated direct call to @p callee, in function @p caller. */
inline void
emitGatedCall(Gen &g, unsigned caller, unsigned callee)
{
    const std::string l_skip = g.fresh("skip");
    // A site is statically "hot" or "cold"; gateSpread controls how noisy
    // its gate is at run time. Sites beyond hotReach are always cold,
    // bounding the hot working set.
    const bool hot = (g.prof.hotReach == 0 || caller < g.prof.hotReach) &&
                     g.rng.chance(g.prof.callProb);
    const double p = hot ? 1.0 - g.prof.gateSpread : g.prof.gateSpread;
    emitChance(g, p);
    g.a.beq(kT0, 0, l_skip);
    g.a.call(fnLabel(callee));
    g.a.label(l_skip);
}

/** Emit one complete function body. */
inline void
emitFunction(Gen &g, unsigned idx)
{
    const WorkloadProfile &p = g.prof;
    g.a.label(fnLabel(idx));

    enum class Kind { Straight, Diamond, Loop, Call, Switch };
    std::vector<Kind> plan;
    const unsigned constructs =
        p.minConstructs +
        g.rng.below(p.maxConstructs - p.minConstructs + 1);
    for (unsigned c = 0; c < constructs; ++c) {
        const double pick = g.rng.uniform();
        if (pick < p.loopFrac)
            plan.push_back(Kind::Loop);
        else if (pick < p.loopFrac + 0.4)
            plan.push_back(Kind::Diamond);
        else
            plan.push_back(Kind::Straight);
    }
    // Call sites (only for callees that exist: the call graph is a DAG).
    std::vector<unsigned> callees;
    for (unsigned s = 0; s < p.callSitesPerFn; ++s) {
        const unsigned lo = idx + 1;
        if (lo >= p.numFunctions)
            break;
        const unsigned hi =
            std::min<unsigned>(p.numFunctions - 1, idx + p.callSpan);
        callees.push_back(
            static_cast<unsigned>(g.rng.range(lo, hi)));
        plan.push_back(Kind::Call);
    }
    if (g.rng.chance(p.indirectFnFrac))
        plan.push_back(Kind::Switch);

    // Shuffle the plan (Fisher-Yates).
    for (std::size_t i = plan.size(); i > 1; --i)
        std::swap(plan[i - 1], plan[g.rng.below(i)]);

    std::size_t next_callee = 0;
    for (Kind k : plan) {
        switch (k) {
          case Kind::Straight:
            emitStraight(g, p.straightLen);
            break;
          case Kind::Diamond:
            emitDiamond(g);
            break;
          case Kind::Loop:
            emitLoop(g);
            break;
          case Kind::Call:
            emitGatedCall(g, idx, callees[next_callee++]);
            break;
          case Kind::Switch:
            emitSwitch(g);
            break;
        }
    }
    g.a.ret();
}

} // namespace rev::workloads::gendetail

#endif // REV_WORKLOADS_GEN_INTERNAL_HPP
