#include "workloads/scheduler.hpp"

#include "common/bitutil.hpp"
#include "common/logging.hpp"
#include "workloads/gen_internal.hpp"
#include "workloads/generator.hpp"

namespace rev::workloads
{

using prog::Assembler;

using namespace gendetail;

namespace
{

// Scheduler-private registers, chosen outside everything the work
// emitters touch (r1..r12 rotate as destinations, r15..r17 and r21..r23
// are the generator conventions, r20 is main's slice counter).
constexpr u8 kTcb = 13;       ///< current thread's context-block address
constexpr u8 kSliceIter = 14; ///< dispatches left in the quantum
constexpr u8 kHart = 18;      ///< hartid (0 unless the Simulator wrote it)

/** Context-block layout: one cache line per thread. */
constexpr i32 kCtxLcg = 0;      ///< thread-private LCG state (r21)
constexpr i32 kCtxCursor = 8;   ///< thread-private data cursor (r23)
constexpr i32 kCtxAcc = 16;     ///< live accumulator (r1)
constexpr i32 kCtxTicks = 24;   ///< quanta this thread has received
constexpr unsigned kCtxBytes = 32;

} // namespace

WorkloadProfile
schedStormProfile()
{
    // Campaign/revsim sized: small static footprint (the oracle re-runs
    // golden streams), branchy work with computed dispatch inside the
    // quanta so every injection class finds targets.
    WorkloadProfile p;
    p.name = "schedstorm";
    p.seed = 23;
    p.numFunctions = 120;
    p.entryFunctions = 8;
    p.minConstructs = 2;
    p.maxConstructs = 4;
    p.straightLen = 6;
    p.callSitesPerFn = 1;
    p.callSpan = 30;
    p.callProb = 0.5;
    p.indirectFnFrac = 0.2;
    p.loopFrac = 0.2;
    p.loopIters = 3;
    p.branchBias = 0.7;
    p.dataFootprint = 1u << 16;
    p.dataStride = 0; // irregular: thread working sets collide in cache
    p.mainIterations = 192; // = scheduling slices
    return p;
}

SchedulerProfile
schedulerProfileFor(const WorkloadProfile &work)
{
    SchedulerProfile p;
    p.work = work;
    p.slices = work.mainIterations;
    return p;
}

bool
isSchedulerWorkload(const std::string &name)
{
    return name.rfind("schedstorm", 0) == 0 || name.rfind("rt-sched", 0) == 0;
}

prog::Program
generateSchedulerWorkload(const SchedulerProfile &profile)
{
    const WorkloadProfile &w = profile.work;
    if (!isPow2(profile.numThreads))
        fatal("scheduler workload '", w.name,
              "': numThreads must be a power of two");
    if (!isPow2(w.entryFunctions))
        fatal("scheduler workload '", w.name,
              "': entryFunctions must be a power of two");
    if (!isPow2(w.dataFootprint))
        fatal("scheduler workload '", w.name,
              "': dataFootprint must be a power of two");
    if (w.numFunctions <= w.entryFunctions)
        fatal("scheduler workload '", w.name, "': too few functions");
    if (profile.slices == 0 || profile.sliceIters == 0)
        fatal("scheduler workload '", w.name, "': empty schedule");

    Assembler a(prog::kDefaultCodeBase);
    Gen g{w, a, Rng(w.seed ^ 0x5bdc1e9au), 0, 1, {}};

    // ---- main: the timer-tick loop ---------------------------------------
    a.label("main");
    a.movi(kIter, static_cast<i32>(profile.slices));
    a.movi(kDataBase, static_cast<i32>(prog::kHeapBase));
    // hartid: reads 0 from untouched memory, the core index when the
    // Simulator published it at kSchedCoreIdWord.
    a.movi(kT1, static_cast<i32>(kSchedCoreIdWord));
    a.ld(kHart, kT1, 0);

    a.label("tick");
    // Next thread: (slice + hartid) mod T. Each core walks the run queue
    // round-robin from a hartid-dependent phase, so the same guest thread
    // lands on different cores on different ticks (migration).
    a.add(kT0, kIter, kHart);
    a.andi(kT0, kT0, static_cast<i32>(profile.numThreads - 1));
    a.shli(kT0, kT0, 5); // kCtxBytes == 32
    a.la(kTcb, "tcb");
    a.add(kTcb, kTcb, kT0);

    // Context restore: the thread's control state (LCG drives all
    // data-dependent branches), data cursor, and live accumulator.
    a.ld(kLcg, kTcb, kCtxLcg);
    a.ld(kCursor, kTcb, kCtxCursor);
    a.ld(1, kTcb, kCtxAcc);

    // One quantum: sliceIters indirect dispatches into the work set.
    a.movi(kSliceIter, static_cast<i32>(profile.sliceIters));
    a.label("quantum");
    lcgStep(g);
    a.shri(kT0, kLcg, 9);
    // Fold the hartid into the entry selection as well: a pure schedule
    // rotation is permutation-invariant over a whole run (every thread
    // still gets the same quanta), but a migrated thread really does
    // execute different code on a different core (per-core run queues,
    // work stealing), so cores must diverge in WHAT they run, not just
    // in what order.
    a.add(kT0, kT0, kHart);
    a.andi(kT0, kT0, static_cast<i32>(w.entryFunctions - 1));
    a.shli(kT0, kT0, 3);
    a.la(kT1, "entry_table");
    a.add(kT1, kT1, kT0);
    a.ld(kT1, kT1, 0);
    const Addr dispatch = a.callr(kT1);
    {
        std::vector<std::string> entries;
        for (unsigned e = 0; e < w.entryFunctions; ++e)
            entries.push_back(fnLabel(e));
        a.annotateIndirect(dispatch, entries);
    }
    a.addi(kSliceIter, kSliceIter, -1);
    a.bne(kSliceIter, 0, "quantum");

    // Context save (the "timer interrupt" firing).
    a.st(kLcg, kTcb, kCtxLcg);
    a.st(kCursor, kTcb, kCtxCursor);
    a.st(1, kTcb, kCtxAcc);
    a.ld(kT0, kTcb, kCtxTicks);
    a.addi(kT0, kT0, 1);
    a.st(kT0, kTcb, kCtxTicks);

    a.addi(kIter, kIter, -1);
    a.bne(kIter, 0, "tick");
    a.halt();

    // ---- per-thread work functions (the generator.cpp construct mix) ------
    for (unsigned i = 0; i < w.numFunctions; ++i)
        emitFunction(g, i);

    // ---- data: context blocks, dispatch + switch tables -------------------
    a.beginData();
    a.align(8);
    a.label("tcb");
    for (unsigned t = 0; t < profile.numThreads; ++t) {
        // Distinct LCG seeds per thread: each thread walks its own paths
        // through the shared work set, so a switch really changes the
        // dynamic control flow, not just a counter.
        a.word64((w.seed ^ 0x2545f491u) * 0x9e3779b97f4a7c15ull + t);
        a.word64(0); // cursor
        a.word64(0); // accumulator
        a.word64(0); // ticks
        static_assert(kCtxBytes == 4 * sizeof(u64), "context-block layout");
    }
    a.label("entry_table");
    for (unsigned e = 0; e < w.entryFunctions; ++e)
        a.word64Label(fnLabel(e));
    for (const auto &[tbl, cases] : g.tables) {
        a.label(tbl);
        for (const auto &c : cases)
            a.word64Label(c);
    }

    prog::Program p;
    p.addModule(a.finalize(w.name, "main"));
    return p;
}

prog::Program
buildProgram(const WorkloadProfile &profile)
{
    if (isSchedulerWorkload(profile.name))
        return generateSchedulerWorkload(schedulerProfileFor(profile));
    return generateWorkload(profile);
}

} // namespace rev::workloads
