/**
 * @file
 * Workload profiles: the knobs that shape a synthetic SPEC-2006 stand-in.
 *
 * The paper's evaluation is driven by a handful of per-benchmark
 * properties: static basic-block count (20266 for mcf .. 92218 for
 * gamess), instructions per block (5.5 .. 10.02), successors per block
 * (1.68 .. 3.339), the size and locality of the dynamically executed
 * branch working set (which determines SC hit rates), branch
 * predictability, and data-memory behaviour. Each profile encodes those
 * knobs; the generator turns a profile into a real RVX program with a
 * DAG-shaped call graph (function i only calls higher-indexed functions,
 * gated by data-dependent branches), inner loops, diamonds, computed-jump
 * switches, and loads/stores over a configurable footprint.
 */

#ifndef REV_WORKLOADS_PROFILE_HPP
#define REV_WORKLOADS_PROFILE_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace rev::workloads
{

/** Generation parameters for one synthetic benchmark. */
struct WorkloadProfile
{
    std::string name;
    u64 seed = 1;

    // --- static shape ------------------------------------------------------
    unsigned numFunctions = 2000;
    unsigned entryFunctions = 8; ///< power of two; targets of main's dispatch
    unsigned minConstructs = 4;  ///< constructs per function body
    unsigned maxConstructs = 8;
    unsigned straightLen = 5;    ///< instructions per straight segment

    // --- call graph ---------------------------------------------------------
    unsigned callSitesPerFn = 2;
    unsigned callSpan = 200;  ///< callee window: j in (i, i+span]
    double callProb = 0.45;   ///< fraction of call sites that are "hot"
    /**
     * Per-site gate randomness: a hot site executes with probability
     * 1-gateSpread, a cold one with probability gateSpread. Small values
     * give stable, predictable hot paths (tight dynamic working sets);
     * large values churn the executed subtree every iteration (gcc/gobmk
     * style locality loss).
     */
    double gateSpread = 0.08;
    /**
     * Functions with index >= hotReach have only cold call sites, bounding
     * the hot dynamic working set to roughly hotReach functions; deeper
     * code is still visited occasionally through cold-gate noise (the
     * churn tail that evicts SC entries). 0 = unbounded.
     */
    unsigned hotReach = 0;
    double indirectFnFrac = 0.1; ///< fraction of fns with a computed switch

    // --- dynamic behaviour ---------------------------------------------------
    double branchBias = 0.85; ///< diamond taken-probability (0.5 = coin flip)
    double loopFrac = 0.25;   ///< fraction of constructs that are loops
    unsigned loopIters = 8;   ///< inner-loop trip count

    // --- instruction mix ------------------------------------------------------
    double fpFrac = 0.05;
    double mulFrac = 0.05;
    double loadFrac = 0.18;
    double storeFrac = 0.08;

    // --- data memory -----------------------------------------------------------
    u64 dataFootprint = 4 << 20; ///< bytes, power of two
    unsigned dataStride = 64;    ///< 0 = irregular (hash-based offsets)

    /** Outer iterations of main (runs usually stop on an instr budget). */
    u32 mainIterations = 1u << 20;
};

/** The 15 calibrated SPEC CPU 2006 stand-ins used in the paper's plots. */
std::vector<WorkloadProfile> spec2006Profiles();

/** Find a profile by benchmark name; fatal if unknown. */
WorkloadProfile specProfile(const std::string &name);

} // namespace rev::workloads

#endif // REV_WORKLOADS_PROFILE_HPP
