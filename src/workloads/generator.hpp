/**
 * @file
 * Synthetic-benchmark generator: WorkloadProfile -> runnable RVX Program.
 */

#ifndef REV_WORKLOADS_GENERATOR_HPP
#define REV_WORKLOADS_GENERATOR_HPP

#include "program/program.hpp"
#include "workloads/profile.hpp"

namespace rev::workloads
{

/**
 * Generate the stand-in program for @p profile. Deterministic in
 * (profile contents, profile.seed). The returned program is fully
 * annotated (every computed site lists its legitimate targets), so
 * signature tables can be built without a separate profiling run.
 */
prog::Program generateWorkload(const WorkloadProfile &profile);

} // namespace rev::workloads

#endif // REV_WORKLOADS_GENERATOR_HPP
