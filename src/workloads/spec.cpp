/**
 * @file
 * Calibrated SPEC CPU 2006 stand-in profiles.
 *
 * Static anchors come from Sec. VIII: basic blocks range from 20266 (mcf)
 * to 92218 (gamess); instructions per block from 5.5 (mcf) to 10.02
 * (gamess); successors per block from 1.68 (soplex) to 3.339 (gamess).
 * Dynamic knobs are set so the benchmarks land in the paper's qualitative
 * regimes: gcc and gobmk execute large, poorly localized branch working
 * sets (heavy SC miss traffic -> the highest REV overheads, gobmk worst);
 * h264ref and hmmer sit near the 32 KB SC boundary; the loopy FP codes
 * (cactusADM, calculix, leslie3d, libquantum, milc) and the small-
 * working-set integer codes (bzip2, mcf, sjeng, soplex, dealII, gamess)
 * hit in the SC nearly always.
 */

#include "workloads/profile.hpp"

#include "common/logging.hpp"

namespace rev::workloads
{

namespace
{

WorkloadProfile
base(const std::string &name, u64 seed)
{
    WorkloadProfile p;
    p.name = name;
    p.seed = seed;
    return p;
}

} // namespace

std::vector<WorkloadProfile>
spec2006Profiles()
{
    std::vector<WorkloadProfile> all;

    { // bzip2: compression loops, small hot set, predictable branches.
        WorkloadProfile p = base("bzip2", 101);
        p.numFunctions = 1600;
        p.callSpan = 10;
        p.callProb = 0.35;
        p.loopFrac = 0.5;
        p.loopIters = 16;
        p.branchBias = 0.94;
        p.straightLen = 6;
        p.dataFootprint = 2 << 20;
        p.dataStride = 16;
        p.gateSpread = 0.03;
        p.hotReach = 30;
        all.push_back(p);
    }
    { // cactusADM: FP stencil, extremely loopy, tiny branch working set.
        WorkloadProfile p = base("cactusADM", 102);
        p.numFunctions = 2000;
        p.callSpan = 16;
        p.callProb = 0.3;
        p.loopFrac = 0.6;
        p.loopIters = 24;
        p.branchBias = 0.96;
        p.straightLen = 8;
        p.fpFrac = 0.30;
        p.loadFrac = 0.20;
        p.storeFrac = 0.10;
        p.dataFootprint = 4 << 20;
        p.dataStride = 16;
        p.gateSpread = 0.04;
        p.hotReach = 26;
        all.push_back(p);
    }
    { // calculix: FP solver, loopy.
        WorkloadProfile p = base("calculix", 103);
        p.numFunctions = 2300;
        p.callSpan = 12;
        p.callProb = 0.32;
        p.loopFrac = 0.5;
        p.loopIters = 22;
        p.branchBias = 0.95;
        p.straightLen = 7;
        p.fpFrac = 0.25;
        p.dataFootprint = 4 << 20;
        p.dataStride = 16;
        p.gateSpread = 0.03;
        p.hotReach = 32;
        all.push_back(p);
    }
    { // dealII: C++ FE library, medium everything.
        WorkloadProfile p = base("dealII", 104);
        p.numFunctions = 3100;
        p.callSpan = 40;
        p.callProb = 0.38;
        p.loopFrac = 0.35;
        p.loopIters = 10;
        p.branchBias = 0.91;
        p.straightLen = 6;
        p.fpFrac = 0.12;
        p.indirectFnFrac = 0.12;
        p.dataFootprint = 4 << 20;
        p.dataStride = 16;
        p.gateSpread = 0.05;
        p.hotReach = 90;
        all.push_back(p);
    }
    { // gamess: the largest static footprint, long blocks, many succs.
        WorkloadProfile p = base("gamess", 105);
        p.numFunctions = 5400;
        p.callSpan = 30;
        p.callProb = 0.4;
        p.minConstructs = 5;
        p.maxConstructs = 9;
        p.loopFrac = 0.45;
        p.loopIters = 16;
        p.branchBias = 0.93;
        p.straightLen = 9;
        p.fpFrac = 0.22;
        p.indirectFnFrac = 0.35;
        p.dataFootprint = 2 << 20;
        p.dataStride = 16;
        p.gateSpread = 0.03;
        p.hotReach = 70;
        all.push_back(p);
    }
    { // gcc: huge, poorly localized branch working set.
        WorkloadProfile p = base("gcc", 106);
        p.numFunctions = 5000;
        p.entryFunctions = 16;
        p.callSpan = 600;
        p.callSitesPerFn = 3;
        p.callProb = 0.45;
        p.loopFrac = 0.10;
        p.loopIters = 4;
        p.branchBias = 0.8;
        p.straightLen = 4;
        p.indirectFnFrac = 0.15;
        p.dataFootprint = 8 << 20;
        p.dataStride = 0; // irregular
        p.gateSpread = 0.055;
        p.hotReach = 200;
        all.push_back(p);
    }
    { // gobmk: worst case -- wide working set, unpredictable, big data.
        WorkloadProfile p = base("gobmk", 107);
        p.numFunctions = 4200;
        p.entryFunctions = 16;
        p.callSpan = 900;
        p.callSitesPerFn = 3;
        p.callProb = 0.50;
        p.loopFrac = 0.08;
        p.loopIters = 3;
        p.branchBias = 0.76;
        p.straightLen = 4;
        p.indirectFnFrac = 0.12;
        p.dataFootprint = 16 << 20;
        p.dataStride = 0;
        p.gateSpread = 0.105;
        p.hotReach = 320;
        all.push_back(p);
    }
    { // h264ref: medium working set near the 32 KB SC boundary.
        WorkloadProfile p = base("h264ref", 108);
        p.numFunctions = 2900;
        p.callSpan = 70;
        p.callProb = 0.4;
        p.loopFrac = 0.28;
        p.loopIters = 6;
        p.branchBias = 0.86;
        p.straightLen = 6;
        p.dataFootprint = 8 << 20;
        p.dataStride = 16;
        p.gateSpread = 0.06;
        p.hotReach = 125;
        all.push_back(p);
    }
    { // hmmer: profile HMM inner loops with a moderate table footprint.
        WorkloadProfile p = base("hmmer", 109);
        p.numFunctions = 1800;
        p.callSpan = 50;
        p.callProb = 0.42;
        p.loopFrac = 0.32;
        p.loopIters = 8;
        p.branchBias = 0.89;
        p.straightLen = 6;
        p.dataFootprint = 2 << 20;
        p.dataStride = 16;
        p.gateSpread = 0.035;
        p.hotReach = 50;
        all.push_back(p);
    }
    { // leslie3d: FP stencil, loopy.
        WorkloadProfile p = base("leslie3d", 110);
        p.numFunctions = 2200;
        p.callSpan = 20;
        p.callProb = 0.3;
        p.loopFrac = 0.55;
        p.loopIters = 20;
        p.branchBias = 0.95;
        p.straightLen = 8;
        p.fpFrac = 0.28;
        p.dataFootprint = 8 << 20;
        p.dataStride = 64;
        p.gateSpread = 0.04;
        p.hotReach = 26;
        all.push_back(p);
    }
    { // libquantum: tiny hot kernel streaming over a big array.
        WorkloadProfile p = base("libquantum", 111);
        p.numFunctions = 1300;
        p.callSpan = 12;
        p.callProb = 0.28;
        p.loopFrac = 0.55;
        p.loopIters = 28;
        p.branchBias = 0.95;
        p.straightLen = 6;
        p.loadFrac = 0.25;
        p.storeFrac = 0.12;
        p.dataFootprint = 32 << 20;
        p.dataStride = 64;
        p.gateSpread = 0.03;
        p.hotReach = 20;
        all.push_back(p);
    }
    { // mcf: smallest static code; short blocks; memory bound.
        WorkloadProfile p = base("mcf", 112);
        p.numFunctions = 1150;
        p.callSpan = 14;
        p.callProb = 0.32;
        p.minConstructs = 3;
        p.maxConstructs = 7;
        p.loopFrac = 0.4;
        p.loopIters = 12;
        p.branchBias = 0.9;
        p.straightLen = 3;
        p.loadFrac = 0.30;
        p.storeFrac = 0.06;
        p.dataFootprint = 64 << 20;
        p.dataStride = 0; // pointer-chasing-like irregularity
        p.gateSpread = 0.03;
        p.hotReach = 40;
        all.push_back(p);
    }
    { // milc: FP lattice QCD, streaming.
        WorkloadProfile p = base("milc", 113);
        p.numFunctions = 2000;
        p.callSpan = 24;
        p.callProb = 0.3;
        p.loopFrac = 0.5;
        p.loopIters = 18;
        p.branchBias = 0.94;
        p.straightLen = 7;
        p.fpFrac = 0.26;
        p.loadFrac = 0.22;
        p.storeFrac = 0.11;
        p.dataFootprint = 8 << 20;
        p.dataStride = 64;
        p.gateSpread = 0.04;
        p.hotReach = 26;
        all.push_back(p);
    }
    { // sjeng: chess search -- branchy but a bounded working set.
        WorkloadProfile p = base("sjeng", 114);
        p.numFunctions = 1900;
        p.callSpan = 20;
        p.callProb = 0.42;
        p.loopFrac = 0.25;
        p.loopIters = 4;
        p.branchBias = 0.88;
        p.straightLen = 4;
        p.dataFootprint = 2 << 20;
        p.dataStride = 16;
        p.gateSpread = 0.04;
        p.hotReach = 65;
        all.push_back(p);
    }
    { // soplex: LP solver -- fewest successors per block, good L1 locality.
        WorkloadProfile p = base("soplex", 115);
        p.numFunctions = 2400;
        p.callSpan = 24;
        p.callProb = 0.35;
        p.loopFrac = 0.45;
        p.loopIters = 12;
        p.branchBias = 0.93;
        p.straightLen = 7;
        p.indirectFnFrac = 0.03;
        p.callSitesPerFn = 1;
        p.loadFrac = 0.22;
        p.dataFootprint = 8 << 20;
        p.dataStride = 8;
        p.gateSpread = 0.04;
        p.hotReach = 24;
        all.push_back(p);
    }

    return all;
}

WorkloadProfile
specProfile(const std::string &name)
{
    for (auto &p : spec2006Profiles())
        if (p.name == name)
            return p;
    fatal("unknown SPEC stand-in '", name, "'");
}

} // namespace rev::workloads
