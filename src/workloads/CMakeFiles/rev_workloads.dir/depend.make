# Empty dependencies file for rev_workloads.
# This may be replaced when dependencies are built.
