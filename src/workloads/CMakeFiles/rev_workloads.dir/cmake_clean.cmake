file(REMOVE_RECURSE
  "CMakeFiles/rev_workloads.dir/generator.cpp.o"
  "CMakeFiles/rev_workloads.dir/generator.cpp.o.d"
  "CMakeFiles/rev_workloads.dir/spec.cpp.o"
  "CMakeFiles/rev_workloads.dir/spec.cpp.o.d"
  "librev_workloads.a"
  "librev_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
