file(REMOVE_RECURSE
  "librev_workloads.a"
)
