/**
 * @file
 * Preemptive-scheduler workload generator (OS-pressure scenario).
 *
 * Grown out of examples/context_switch.cpp: where the example drives
 * context switches from the harness (host-side save/restore of machine
 * registers and validator thread state), this generator emits the
 * scheduler INTO the guest program. The generated binary multiplexes T
 * guest threads over one hardware context: an outer "timer tick" loop
 * picks the next thread, restores its register context from an
 * in-memory context block, runs a fixed quantum of generated work
 * (indirect-dispatched function calls, the same construct mix as
 * generator.cpp), and saves the context back. Every switch churns the
 * signature cache and the branch predictor the way kernel preemption
 * does, without leaving validated code.
 *
 * Multicore: the program begins by loading a hartid word (written by the
 * Simulator when SimConfig::coreIdAddr == kSchedCoreIdWord) and rotates
 * the thread schedule by it. On an N-core run each core therefore
 * executes a different thread interleaving of the same program — the
 * migration pattern a load-balancing scheduler produces — while at N=1
 * (or with coreIdAddr unset) the word reads 0 and the schedule is the
 * canonical single-core one.
 */

#ifndef REV_WORKLOADS_SCHEDULER_HPP
#define REV_WORKLOADS_SCHEDULER_HPP

#include "program/program.hpp"
#include "workloads/profile.hpp"

namespace rev::workloads
{

/**
 * Where the generated scheduler expects its hartid word. Sits in the
 * gap between the LO-FAT measurement region (0x28000000 + 64 KB) and
 * the DMA buffers (0x30000000); reads 0 unless the Simulator was told
 * to publish core ids there (SimConfig::coreIdAddr).
 */
inline constexpr Addr kSchedCoreIdWord = 0x2F000000;

/** Knobs of the generated scheduler (around a work-shape profile). */
struct SchedulerProfile
{
    /** Shape of the per-thread work functions (generator.cpp mix). */
    WorkloadProfile work;
    unsigned numThreads = 4; ///< guest threads; must be a power of two
    /** Timer ticks (context switches) before the program halts. */
    unsigned slices = 256;
    /** Indirect work-function dispatches per quantum. */
    unsigned sliceIters = 12;
};

/** The canonical "schedstorm" profile (small, campaign/revsim sized). */
WorkloadProfile schedStormProfile();

/** Scheduler knobs derived deterministically from @p work
 *  (slices = work.mainIterations; threads/quantum fixed), so a plain
 *  WorkloadProfile — the currency of revsim, the red-team campaign and
 *  the sweep cache — fully describes the generated program. */
SchedulerProfile schedulerProfileFor(const WorkloadProfile &work);

/** Does @p name select the scheduler generator in buildProgram()? */
bool isSchedulerWorkload(const std::string &name);

prog::Program generateSchedulerWorkload(const SchedulerProfile &profile);

/**
 * Name-dispatched program builder: scheduler profiles (see
 * isSchedulerWorkload) go through generateSchedulerWorkload, everything
 * else through generateWorkload. Use this wherever a WorkloadProfile of
 * either kind may arrive (revsim --bench, campaign workload lists).
 */
prog::Program buildProgram(const WorkloadProfile &profile);

} // namespace rev::workloads

#endif // REV_WORKLOADS_SCHEDULER_HPP
