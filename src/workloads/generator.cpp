#include "workloads/generator.hpp"

#include "common/bitutil.hpp"
#include "common/logging.hpp"
#include "workloads/gen_internal.hpp"

namespace rev::workloads
{

using prog::Assembler;

using namespace gendetail;

prog::Program
generateWorkload(const WorkloadProfile &profile)
{
    if (!isPow2(profile.entryFunctions))
        fatal("workload '", profile.name,
              "': entryFunctions must be a power of two");
    if (!isPow2(profile.dataFootprint))
        fatal("workload '", profile.name,
              "': dataFootprint must be a power of two");
    if (profile.numFunctions <= profile.entryFunctions)
        fatal("workload '", profile.name, "': too few functions");

    Assembler a(prog::kDefaultCodeBase);
    Gen g{profile, a, Rng(profile.seed ^ 0x5bdc1e9au), 0, 1, {}};

    // ---- main: dispatch loop over the entry functions ---------------------
    a.label("main");
    a.movi(kIter, static_cast<i32>(profile.mainIterations));
    a.movi(kLcg, static_cast<i32>(0x2545f491u ^ (profile.seed & 0xffff)));
    a.movi(kDataBase, static_cast<i32>(prog::kHeapBase));
    a.movi(kCursor, 0);
    a.label("main_loop");
    lcgStep(g);
    // Sticky entry selection: the dispatched entry changes only every 64
    // outer iterations (program phases), as real indirect call sites are
    // mostly monomorphic over short windows.
    a.shri(kT0, kIter, 6);
    a.andi(kT0, kT0, static_cast<i32>(profile.entryFunctions - 1));
    a.shli(kT0, kT0, 3);
    a.la(kT1, "entry_table");
    a.add(kT1, kT1, kT0);
    a.ld(kT1, kT1, 0);
    const Addr dispatch = a.callr(kT1);
    {
        std::vector<std::string> entries;
        for (unsigned e = 0; e < profile.entryFunctions; ++e)
            entries.push_back(fnLabel(e));
        a.annotateIndirect(dispatch, entries);
    }
    a.addi(kIter, kIter, -1);
    a.bne(kIter, 0, "main_loop");
    a.halt();

    // ---- function bodies ----------------------------------------------------
    for (unsigned i = 0; i < profile.numFunctions; ++i)
        emitFunction(g, i);

    // ---- data: dispatch + switch tables --------------------------------------
    a.beginData();
    a.align(8);
    a.label("entry_table");
    for (unsigned e = 0; e < profile.entryFunctions; ++e)
        a.word64Label(fnLabel(e));
    for (const auto &[tbl, cases] : g.tables) {
        a.label(tbl);
        for (const auto &c : cases)
            a.word64Label(c);
    }

    prog::Program p;
    p.addModule(a.finalize(profile.name, "main"));
    return p;
}

} // namespace rev::workloads
