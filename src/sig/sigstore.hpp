/**
 * @file
 * SigStore: the trusted linker/loader side of REV.
 *
 * For every module of a program it derives the reference CFG, builds the
 * encrypted signature table, assigns the table a home in RAM, and exposes
 * the (module range, table base) records that initialize the SAG base /
 * limit / key registers (Sec. IV.B). The per-module symmetric keys are
 * generated here and survive only in wrapped form inside the table
 * headers, mirroring Sec. IX.
 */

#ifndef REV_SIG_SIGSTORE_HPP
#define REV_SIG_SIGSTORE_HPP

#include <vector>

#include "common/random.hpp"
#include "program/cfg.hpp"
#include "program/program.hpp"
#include "sig/table.hpp"

namespace rev::sig
{

/** RAM region where signature tables are placed (above heap and stack). */
inline constexpr Addr kSigTableRegion = 0x20000000;

/** Everything REV needs to know about one module's signatures. */
struct ModuleSig
{
    const prog::Module *module = nullptr;
    prog::Cfg cfg;
    Addr tableBase = 0;
    TableStats stats;
    /** bbHash() per cfg block (empty in CFI-only mode). Kept so stores
     *  built for other modes can reuse them — hashing every block is the
     *  dominant table-build cost and is mode-independent. */
    std::vector<u32> blockHashes;
};

/**
 * Builds and manages the signature tables of one program.
 */
class SigStore
{
  public:
    /**
     * Derive CFGs and build all tables.
     *
     * @param program   The program (annotations must already include any
     *                  profiled indirect targets).
     * @param mode      Validation mode shared by all tables.
     * @param vault     CPU key vault the tables are bound to.
     * @param seed      Seeds per-module key generation.
     * @param cfg_donor Optional store built for the same program and split
     *                  limits (any mode): its already-derived CFGs are
     *                  copied instead of re-derived. CFG derivation is
     *                  mode-independent, so the resulting tables are
     *                  byte-identical either way.
     */
    SigStore(const prog::Program &program, ValidationMode mode,
             const crypto::KeyVault &vault, u64 seed = 1,
             const prog::SplitLimits &limits = {},
             unsigned hash_rounds = 5,
             const SigStore *cfg_donor = nullptr);

    /**
     * Re-derive every CFG and rebuild every table from @p program's
     * current contents. This is the trusted dynamic linker / OS path of
     * Sec. IV.E: after new code is generated or a module is dynamically
     * linked (and its annotations merged), the tables are regenerated
     * with fresh keys before the code may execute. Call loadInto() and
     * Validator::refreshTables() afterwards.
     */
    void rebuild(const prog::Program &program);

    /** Copy every table image into simulated RAM. */
    void loadInto(SparseMemory &mem) const;

    /**
     * Point future rebuild()s at @p vault. A copied store (e.g. one
     * cloned from a shared prototype) still references its builder's
     * vault; the copy's owner rebinds it to a vault with the same fuses
     * so the copy has no lifetime ties to the prototype's owner.
     */
    void rebindVault(const crypto::KeyVault &vault) { vault_ = &vault; }

    /** Per-module signature records, in program module order. */
    const std::vector<ModuleSig> &moduleSigs() const { return sigs_; }

    /** Record for the module whose code contains @p addr, or nullptr. */
    const ModuleSig *findByCode(Addr addr) const;

    ValidationMode mode() const { return mode_; }
    unsigned hashRounds() const { return hashRounds_; }

    /** Sum of table sizes in bytes. */
    u64 totalTableBytes() const;

  private:
    void rebuildWith(const prog::Program &program, const SigStore *cfg_donor);

    ValidationMode mode_;
    unsigned hashRounds_;
    const crypto::KeyVault *vault_;
    u64 seed_;
    prog::SplitLimits limits_;
    u64 generation_ = 0; ///< bumps each rebuild (fresh keys/nonces)
    std::vector<ModuleSig> sigs_;
    std::vector<std::vector<u8>> images_;
};

} // namespace rev::sig

#endif // REV_SIG_SIGSTORE_HPP
