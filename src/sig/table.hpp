/**
 * @file
 * RAM-resident reference signature tables (Sec. V).
 *
 * Each module gets one table, built offline by the trusted toolchain from
 * the module's reference CFG, encrypted with a per-module symmetric key
 * (AES-128-CTR) whose wrapped form sits in the table header (Sec. IX).
 *
 * Layout in simulated RAM:
 *
 *   [ header, cleartext, 80 B ]
 *   [ P bucket slots, each one record, encrypted ]
 *   [ overflow records, encrypted ]
 *
 * A basic block is identified by the address of its terminating
 * instruction; its record lives directly at slot (termOff % P), so an SC
 * miss for an unconflicted block costs a single memory access, as in the
 * paper. Colliding entries and continuation (spill) records holding extra
 * target / predecessor addresses live in the overflow area, linked into
 * the bucket's chain through the "next" field — the paper's "Next Entry
 * points to a spill area ... and the next entry sharing the same hash
 * index". Walks stop as soon as the needed address is located.
 *
 * Per Sec. V.B, the 4-byte crypto hash is itself the discriminator among
 * validation units sharing a terminator (control entering a straight-line
 * run in the middle yields a different hash for the same terminator):
 * lookups match on (termOff, hash) — the hardware compares the CHG digest
 * against candidate records while walking the chain. A chain that
 * contains the terminator but no matching hash is a detected compromise.
 *
 * Record sizes: Full 11 B, Aggressive 17 B (two inline targets), CFI-only
 * 12 B (one (site, target) pair per record).
 *
 * Address encodings: termOff is a module-relative 24-bit offset;
 * target/predecessor slots are 24-bit offsets relative to the program code
 * base (prog::kDefaultCodeBase), so cross-module targets are expressible —
 * the trusted linker/loader knows every module's load address.
 */

#ifndef REV_SIG_TABLE_HPP
#define REV_SIG_TABLE_HPP

#include <array>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/sparse_memory.hpp"
#include "crypto/keyvault.hpp"
#include "program/cfg.hpp"
#include "sig/mode.hpp"

namespace rev::sig
{

/** Size of the cleartext table header. */
inline constexpr u32 kHeaderBytes = 80;

/** Record size per mode. */
unsigned recordSize(ValidationMode mode);

/** Build-time statistics (drives the Sec. V table-size experiments). */
struct TableStats
{
    u64 logicalEntries = 0; ///< validation units (BBs / site-target pairs)
    u64 primaryRecords = 0;
    u64 contRecords = 0;
    u64 numBuckets = 0;
    u64 sizeBytes = 0;
    u64 maxChainLength = 0;
    u64 hashDuplicates = 0; ///< distinct BBs sharing a truncated hash
};

/** A built table: raw bytes to place in RAM plus its statistics. */
struct BuiltTable
{
    std::vector<u8> bytes;
    TableStats stats;
};

/**
 * Compute the 32-bit BB signature over the given code bytes bound to the
 * (start, term) address pair, per Sec. V.B ("the BB crypto hash includes
 * these addresses along with ... instructions in the BB").
 */
u32 bbHashBytes(const u8 *code, std::size_t len, Addr start, Addr term,
                unsigned hash_rounds);

/** BB signature computed from a module image (builder side). */
u32 bbHash(const prog::Module &mod, const prog::BasicBlock &bb,
           unsigned hash_rounds);

/** One block's input to bbHashBatch (borrowed code bytes). */
struct BbHashJob
{
    const u8 *code = nullptr;
    std::size_t len = 0;
    Addr start = 0;
    Addr term = 0;
};

/**
 * Batched bbHashBytes: hash up to 4 blocks in one multi-lane CubeHash
 * pass (crypto::CubeHashX4), writing out[i] = bbHashBytes(jobs[i]...).
 * Bit-identical to the scalar path; proto-build (SigStore) feeds every
 * module's block list through this 4 lanes at a time.
 */
void bbHashBatch(const BbHashJob *jobs, unsigned n, unsigned hash_rounds,
                 u32 *out);

/**
 * Build the signature table for @p mod / @p cfg in @p mode, encrypted with
 * @p module_key (wrapped for the CPU owning @p vault) and @p nonce.
 *
 * @param block_hashes Optional precomputed bbHash() per cfg.blocks()
 *        index (same module bytes and hash rounds). Hashing every block
 *        dominates table-build time and is mode-independent, so stores
 *        built for several modes share one computation. Ignored in
 *        CFI-only mode (no hashes in the table).
 */
BuiltTable buildTable(const prog::Module &mod, const prog::Cfg &cfg,
                      ValidationMode mode, const crypto::KeyVault &vault,
                      const crypto::AesKey &module_key, u64 nonce,
                      unsigned hash_rounds = 5,
                      const std::vector<u32> *block_hashes = nullptr);

/**
 * Optional early-exit hints for a table walk: the hardware stops reading
 * spill records once the address it needs has been located (it only ever
 * needs the one successor / predecessor of the current dynamic block).
 */
struct WalkNeeds
{
    std::optional<Addr> target;
    std::optional<Addr> pred;
};

/** Result of a reference-signature lookup. */
struct LookupResult
{
    bool found = false;
    /** The terminator exists in the table but no record matched the
     *  presented hash: a code-integrity violation (vs. an unknown block). */
    bool termSeen = false;
    u32 hash = 0;
    prog::TermKind termKind = prog::TermKind::Halt;
    std::vector<Addr> targets;  ///< explicit targets (absolute addresses)
    std::vector<Addr> retPreds; ///< RET addresses allowed to precede entry
    /**
     * Table addresses read while walking (head slot + each record); the
     * timing model replays these through the memory hierarchy.
     */
    std::vector<Addr> memAddrs;
};

/**
 * Decrypting reader over a table image in simulated RAM. This models the
 * SC miss handler: it issues reads against memory, decrypts them with the
 * unwrapped module key, and walks the collision chain.
 */
class TableReader
{
  public:
    /**
     * @param mem        Simulated RAM holding the table.
     * @param table_base RAM address of the table header.
     * @param vault      CPU key vault used to unwrap the module key.
     */
    TableReader(const SparseMemory &mem, Addr table_base,
                const crypto::KeyVault &vault);

    /**
     * Clone @p other's state — the header fields and unwrapped key it
     * cached at construction, plus its keystream memo — re-bound to
     * @p mem (a fork of the memory @p other reads). Snapshot forking
     * uses this so a fork's reader sees exactly the header the source
     * parsed, even if a later tamper corrupted the header bytes.
     */
    TableReader(const TableReader &other, const SparseMemory &mem)
        : mem_(mem), base_(other.base_), valid_(other.valid_),
          mode_(other.mode_), hashRounds_(other.hashRounds_),
          numBuckets_(other.numBuckets_), numRecords_(other.numRecords_),
          nonce_(other.nonce_), cipher_(other.cipher_),
          keystream_(other.keystream_)
    {
    }

    /** False if the header is corrupt or the key fails to unwrap. */
    bool valid() const { return valid_; }

    ValidationMode mode() const { return mode_; }
    unsigned hashRounds() const { return hashRounds_; }

    /**
     * Full/Aggressive lookup of the validation unit with terminator
     * @p term whose generated digest is @p hash (Sec. V.B: the hash
     * discriminates among entries sharing a terminator).
     * @param module_base Load address of the module owning the table.
     * @param needs       Optional early-exit hints for spill walks.
     */
    LookupResult lookup(Addr term, u32 hash, Addr module_base,
                        const WalkNeeds *needs = nullptr) const;

    /**
     * CFI-only lookup: legitimate targets recorded for the computed site /
     * return @p term (all of them, or up to the needed one).
     */
    LookupResult lookupSite(Addr term, Addr module_base,
                            const WalkNeeds *needs = nullptr) const;

  private:
    /** Read and decrypt @p len bytes at table offset @p off. */
    void readDec(u64 off, u8 *out, std::size_t len) const;

    /** Keystream block for CTR counter @p counter, memoized. */
    const u8 *keystreamBlock(u64 counter) const;

    const SparseMemory &mem_;
    Addr base_;
    bool valid_ = false;
    ValidationMode mode_ = ValidationMode::Full;
    unsigned hashRounds_ = 5;
    u32 numBuckets_ = 0;
    u32 numRecords_ = 0;
    u64 nonce_ = 0;
    std::optional<crypto::Aes128> cipher_;

    /**
     * AES-CTR keystream memo, keyed by counter-block index. The
     * keystream depends only on (key, nonce, stream position) — never on
     * the ciphertext — so repeated walks of the same table slots skip
     * the AES work while tampered table bytes still decrypt to garbage
     * exactly as a from-scratch CTR pass would.
     */
    mutable std::unordered_map<u64, std::array<u8, 16>> keystream_;
};

} // namespace rev::sig

#endif // REV_SIG_TABLE_HPP
