#include "sig/mode.hpp"

namespace rev::sig
{

const char *
modeName(ValidationMode mode)
{
    switch (mode) {
      case ValidationMode::Full:
        return "full";
      case ValidationMode::Aggressive:
        return "aggressive";
      case ValidationMode::CfiOnly:
        return "cfi-only";
    }
    return "?";
}

} // namespace rev::sig
