#include "sig/table.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "common/logging.hpp"
#include "crypto/cubehash.hpp"
#include "crypto/cubehash_lanes.hpp"
#include "program/program.hpp"

namespace rev::sig
{

using prog::BasicBlock;
using prog::TermKind;

namespace
{

/** Record kinds (low two bits of byte 0). */
constexpr u8 kRecPrimary = 1;
constexpr u8 kRecCont = 2;

/** Base against which target/predecessor slots are encoded. */
constexpr Addr kSlotBase = prog::kDefaultCodeBase;

void
put24(u8 *p, u32 v)
{
    REV_ASSERT(v < (1u << 24), "value does not fit in 24 bits: ", v);
    p[0] = static_cast<u8>(v);
    p[1] = static_cast<u8>(v >> 8);
    p[2] = static_cast<u8>(v >> 16);
}

u32
get24(const u8 *p)
{
    return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
           (static_cast<u32>(p[2]) << 16);
}

void
put32(u8 *p, u32 v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<u8>(v >> (8 * i));
}

u32
get32(const u8 *p)
{
    u32 v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

/** Encode an absolute target/predecessor address as a 24-bit slot. */
u32
slotEncode(Addr addr)
{
    REV_ASSERT(addr >= kSlotBase, "slot address below code base");
    const u64 off = addr - kSlotBase + 1;
    REV_ASSERT(off < (1u << 24), "slot address out of 24-bit range");
    return static_cast<u32>(off);
}

Addr
slotDecode(u32 slot)
{
    return kSlotBase + slot - 1;
}

/**
 * One validation unit before packing. Target/predecessor sets are borrowed
 * from the CFG's BasicBlock vectors (never copied — buildTable is on the
 * sweep's proto-build critical path); CFI-only entries carry their single
 * target inline instead.
 */
struct Logical
{
    u32 termOff;
    u32 startOff;
    TermKind kind;
    u32 hash;
    Addr cfiTarget;                          ///< CfiOnly: the one target
    const std::vector<Addr> *targets;        ///< nullptr = none
    const std::vector<Addr> *preds;          ///< nullptr = none
};

const std::vector<Addr> kNoAddrs;

/** Slots available per continuation record. */
unsigned
contSlots(ValidationMode mode)
{
    return mode == ValidationMode::Aggressive ? 4 : 2;
}

/** Byte offsets of continuation slots. */
const unsigned *
contSlotOffsets(ValidationMode mode)
{
    static const unsigned full_off[] = {1, 4};
    static const unsigned agg_off[] = {1, 4, 11, 14};
    return mode == ValidationMode::Aggressive ? agg_off : full_off;
}

/** Position of the "next" field within a record (all modes). */
constexpr unsigned kNextFieldOffset = 8;

} // namespace

unsigned
recordSize(ValidationMode mode)
{
    switch (mode) {
      case ValidationMode::Full:
        return 11;
      case ValidationMode::Aggressive:
        return 17;
      case ValidationMode::CfiOnly:
        return 12;
    }
    panic("bad mode");
}

u32
bbHashBytes(const u8 *code, std::size_t len, Addr start, Addr term,
            unsigned hash_rounds)
{
    crypto::CubeHash h(hash_rounds);
    h.update(code, len);
    u8 bind[16];
    for (int i = 0; i < 8; ++i) {
        bind[i] = static_cast<u8>(start >> (8 * i));
        bind[8 + i] = static_cast<u8>(term >> (8 * i));
    }
    h.update(bind, sizeof(bind));
    return crypto::CubeHash::signature32(h.finalize());
}

void
bbHashBatch(const BbHashJob *jobs, unsigned n, unsigned hash_rounds,
            u32 *out)
{
    // Each lane's message is code || 16-byte (start, term) binding, same
    // bytes bbHashBytes absorbs. The concatenation is staged in reused
    // per-thread scratch so CubeHashX4 sees one contiguous message.
    thread_local std::vector<u8> scratch[crypto::CubeHashX4::kLanes];
    REV_ASSERT(n >= 1 && n <= crypto::CubeHashX4::kLanes,
               "bbHashBatch: 1..4 jobs");
    crypto::CubeHashX4::Msg msgs[crypto::CubeHashX4::kLanes];
    for (unsigned i = 0; i < n; ++i) {
        auto &buf = scratch[i];
        buf.assign(jobs[i].code, jobs[i].code + jobs[i].len);
        for (int b = 0; b < 8; ++b) {
            buf.push_back(static_cast<u8>(jobs[i].start >> (8 * b)));
        }
        for (int b = 0; b < 8; ++b) {
            buf.push_back(static_cast<u8>(jobs[i].term >> (8 * b)));
        }
        msgs[i] = {buf.data(), buf.size()};
    }
    crypto::CubeHashX4 hx(hash_rounds);
    crypto::Digest digests[crypto::CubeHashX4::kLanes];
    hx.hashBatch(msgs, n, digests);
    for (unsigned i = 0; i < n; ++i)
        out[i] = crypto::CubeHash::signature32(digests[i]);
}

u32
bbHash(const prog::Module &mod, const prog::BasicBlock &bb,
       unsigned hash_rounds)
{
    REV_ASSERT(bb.start >= mod.base && bb.end <= mod.codeEnd(),
               "bbHash: block outside module code");
    return bbHashBytes(mod.image.data() + (bb.start - mod.base),
                       bb.sizeBytes(), bb.start, bb.term, hash_rounds);
}

BuiltTable
buildTable(const prog::Module &mod, const prog::Cfg &cfg,
           ValidationMode mode, const crypto::KeyVault &vault,
           const crypto::AesKey &module_key, u64 nonce,
           unsigned hash_rounds, const std::vector<u32> *block_hashes)
{
    REV_ASSERT(!block_hashes ||
                   block_hashes->size() == cfg.blocks().size(),
               "buildTable: block-hash vector does not match the CFG");
    const unsigned rs = recordSize(mode);

    // ---- collect logical entries -----------------------------------------
    std::vector<Logical> entries;
    entries.reserve(cfg.blocks().size());
    if (mode == ValidationMode::CfiOnly) {
        // One (site, target) record per legitimate transfer of computed
        // sites and returns; code hashes are not validated (Sec. V.D).
        std::set<Addr> seen_terms;
        for (const auto &bb : cfg.blocks()) {
            if (!seen_terms.insert(bb.term).second)
                continue;
            if (!termIsComputed(bb.kind) && bb.kind != TermKind::Return)
                continue;
            for (Addr t : bb.succs) {
                Logical e{};
                e.termOff = static_cast<u32>(bb.term - mod.base);
                e.kind = bb.kind;
                e.cfiTarget = t;
                entries.push_back(e);
            }
        }
    } else {
        for (std::size_t i = 0; i < cfg.blocks().size(); ++i) {
            const auto &bb = cfg.blocks()[i];
            Logical e{};
            e.termOff = static_cast<u32>(bb.term - mod.base);
            e.startOff = static_cast<u32>(bb.start - mod.base);
            e.kind = bb.kind;
            e.hash = block_hashes ? (*block_hashes)[i]
                                  : bbHash(mod, bb, hash_rounds);
            if (mode == ValidationMode::Aggressive) {
                // Verify every branch target explicitly (returns are
                // still validated via predecessors, Sec. V.A).
                if (bb.kind != TermKind::Return)
                    e.targets = &bb.succs;
            } else if (termIsComputed(bb.kind)) {
                e.targets = &bb.succs;
            }
            e.preds = &bb.retPreds;
            entries.push_back(e);
        }
    }

    // ---- bucketize --------------------------------------------------------
    u64 buckets_wanted = std::max<u64>(1, (entries.size() * 17) / 20);
    if (buckets_wanted % 2 == 0)
        ++buckets_wanted; // odd modulus spreads sequential offsets
    const u32 P = static_cast<u32>(buckets_wanted);

    // Stable counting sort into one flat array (entry order within a
    // bucket is part of the table layout).
    std::vector<u32> bucket_begin(P + 1, 0);
    for (const auto &e : entries)
        ++bucket_begin[e.termOff % P + 1];
    for (u32 b = 0; b < P; ++b)
        bucket_begin[b + 1] += bucket_begin[b];
    std::vector<const Logical *> bucketed(entries.size());
    {
        std::vector<u32> cursor(bucket_begin.begin(), bucket_begin.end() - 1);
        for (const auto &e : entries)
            bucketed[cursor[e.termOff % P]++] = &e;
    }

    // ---- emit records ------------------------------------------------------
    // Record index i (1-based) lives at byte (i-1)*rs; indices 1..P are the
    // bucket slots themselves; overflow records follow. A bucket's first
    // entry sits directly in its slot, so the common SC miss costs one
    // memory access.
    std::vector<u8> records(static_cast<std::size_t>(P) * rs, 0);
    u64 num_records = P, num_cont = 0, max_chain = 0;

    auto emit_overflow = [&]() -> std::size_t {
        records.insert(records.end(), rs, 0);
        ++num_records;
        return records.size() - rs; // byte position
    };

    // Fill one record (primary). Returns overflow slot values.
    auto fill_primary = [&](u8 *rec, const Logical *e,
                            std::vector<u32> &overflow, unsigned &nt) {
        rec[0] = static_cast<u8>(kRecPrimary |
                                 (static_cast<u8>(e->kind) << 2));
        put24(rec + 1, e->termOff);
        if (mode == ValidationMode::CfiOnly) {
            put24(rec + 4, slotEncode(e->cfiTarget));
            nt = 0;
            return;
        }
        put32(rec + 4, e->hash);

        const std::vector<Addr> &targets = e->targets ? *e->targets
                                                      : kNoAddrs;
        const std::vector<Addr> &preds = e->preds ? *e->preds : kNoAddrs;
        std::size_t inline_targets = 0;
        if (mode == ValidationMode::Aggressive) {
            if (!targets.empty())
                put24(rec + 11, slotEncode(targets[0]));
            if (targets.size() > 1)
                put24(rec + 14, slotEncode(targets[1]));
            inline_targets = std::min<std::size_t>(2, targets.size());
        }
        nt = 0;
        for (std::size_t i = inline_targets; i < targets.size(); ++i) {
            overflow.push_back(slotEncode(targets[i]));
            ++nt;
        }
        for (Addr p : preds)
            overflow.push_back(slotEncode(p));
    };

    std::vector<u32> overflow; // reused across entries
    for (u32 b = 0; b < P; ++b) {
        max_chain =
            std::max<u64>(max_chain, bucket_begin[b + 1] - bucket_begin[b]);
        std::size_t prev_pos = ~std::size_t{0}; // record needing a next link
        bool first = true;
        for (u32 bi = bucket_begin[b]; bi < bucket_begin[b + 1]; ++bi) {
            const Logical *e = bucketed[bi];
            overflow.clear();
            unsigned n_extra_targets = 0;

            std::size_t my_pos;
            if (first) {
                my_pos = static_cast<std::size_t>(b) * rs;
                first = false;
            } else {
                my_pos = emit_overflow();
                put24(records.data() + prev_pos + kNextFieldOffset,
                      static_cast<u32>(my_pos / rs) + 1);
            }
            fill_primary(records.data() + my_pos, e, overflow,
                         n_extra_targets);
            prev_pos = my_pos;

            // Continuation (spill) records, chained behind the primary.
            const unsigned per = contSlots(mode);
            const unsigned n_extra_preds =
                static_cast<unsigned>(overflow.size()) - n_extra_targets;
            unsigned done_t = 0, done_p = 0;
            std::size_t taken = 0;
            while (taken < overflow.size()) {
                const std::size_t cont_pos = emit_overflow();
                ++num_cont;
                put24(records.data() + prev_pos + kNextFieldOffset,
                      static_cast<u32>(cont_pos / rs) + 1);
                u8 *cont = records.data() + cont_pos;
                const unsigned nt =
                    static_cast<unsigned>(std::min<std::size_t>(
                        per, n_extra_targets - done_t));
                const unsigned np =
                    static_cast<unsigned>(std::min<std::size_t>(
                        per - nt, n_extra_preds - done_p));
                if (mode == ValidationMode::Aggressive)
                    cont[0] =
                        static_cast<u8>(kRecCont | (nt << 2) | (np << 5));
                else
                    cont[0] =
                        static_cast<u8>(kRecCont | (nt << 2) | (np << 4));
                const unsigned *slot_off = contSlotOffsets(mode);
                for (unsigned s = 0; s < nt + np; ++s)
                    put24(cont + slot_off[s], overflow[taken + s]);
                done_t += nt;
                done_p += np;
                taken += nt + np;
                prev_pos = cont_pos;
            }
        }
    }

    // ---- hash-uniqueness accounting (Sec. V.B note) -----------------------
    u64 hash_dups = 0;
    if (mode != ValidationMode::CfiOnly) {
        std::vector<u32> hashes;
        hashes.reserve(entries.size());
        for (const auto &e : entries)
            hashes.push_back(e.hash);
        std::sort(hashes.begin(), hashes.end());
        for (std::size_t i = 1; i < hashes.size(); ++i)
            hash_dups += hashes[i] == hashes[i - 1];
    }

    // ---- assemble and encrypt ---------------------------------------------
    std::vector<u8> body = std::move(records);
    crypto::Aes128 cipher(module_key);
    cipher.ctrCrypt(body, nonce);

    BuiltTable out;
    out.bytes.resize(kHeaderBytes, 0);
    u8 *hdr = out.bytes.data();
    std::memcpy(hdr, "RSIG", 4);
    hdr[4] = static_cast<u8>(mode);
    hdr[5] = static_cast<u8>(hash_rounds);
    hdr[6] = static_cast<u8>(rs);
    hdr[7] = static_cast<u8>(rs >> 8);
    put32(hdr + 8, P);
    put32(hdr + 12, static_cast<u32>(num_records));
    for (int i = 0; i < 8; ++i)
        hdr[16 + i] = static_cast<u8>(nonce >> (8 * i));
    const crypto::WrappedKey wrapped = vault.wrap(module_key);
    std::memcpy(hdr + 24, wrapped.data(), wrapped.size());
    put32(hdr + 56,
          static_cast<u32>(kHeaderBytes + body.size()));

    out.bytes.insert(out.bytes.end(), body.begin(), body.end());

    out.stats.logicalEntries = entries.size();
    out.stats.primaryRecords = entries.size();
    out.stats.contRecords = num_cont;
    out.stats.numBuckets = P;
    out.stats.sizeBytes = out.bytes.size();
    out.stats.maxChainLength = max_chain;
    out.stats.hashDuplicates = hash_dups;
    return out;
}

// ---------------------------------------------------------------------------
// TableReader
// ---------------------------------------------------------------------------

TableReader::TableReader(const SparseMemory &mem, Addr table_base,
                         const crypto::KeyVault &vault)
    : mem_(mem), base_(table_base)
{
    u8 hdr[kHeaderBytes];
    mem_.readBytes(base_, hdr, sizeof(hdr));
    if (std::memcmp(hdr, "RSIG", 4) != 0)
        return;
    if (hdr[4] > static_cast<u8>(ValidationMode::CfiOnly))
        return;
    mode_ = static_cast<ValidationMode>(hdr[4]);
    hashRounds_ = hdr[5];
    numBuckets_ = get32(hdr + 8);
    numRecords_ = get32(hdr + 12);
    nonce_ = 0;
    for (int i = 7; i >= 0; --i)
        nonce_ = (nonce_ << 8) | hdr[16 + i];

    crypto::WrappedKey wrapped;
    std::memcpy(wrapped.data(), hdr + 24, wrapped.size());
    const auto key = vault.unwrap(wrapped);
    if (!key || numBuckets_ == 0)
        return;
    cipher_.emplace(*key);
    valid_ = true;
}

const u8 *
TableReader::keystreamBlock(u64 counter) const
{
    auto [it, fresh] = keystream_.try_emplace(counter);
    if (fresh) {
        u8 *ks = it->second.data();
        for (int i = 0; i < 8; ++i) {
            ks[i] = static_cast<u8>(nonce_ >> (8 * i));
            ks[8 + i] = static_cast<u8>(counter >> (8 * i));
        }
        cipher_->encryptBlock(ks);
    }
    return it->second.data();
}

void
TableReader::readDec(u64 off, u8 *out, std::size_t len) const
{
    mem_.readBytes(base_ + off, out, len);
    // Equivalent to cipher_->ctrCryptAt(out, len, nonce_, off -
    // kHeaderBytes), but with the keystream blocks memoized — table
    // walks revisit the same slots constantly and the AES work depends
    // only on the stream position, not the ciphertext.
    std::size_t done = 0;
    while (done < len) {
        const u64 stream_pos = off - kHeaderBytes + done;
        const unsigned skip = static_cast<unsigned>(stream_pos % 16);
        const u8 *ks = keystreamBlock(stream_pos / 16);
        const std::size_t take = std::min<std::size_t>(16 - skip, len - done);
        for (std::size_t i = 0; i < take; ++i)
            out[done + i] ^= ks[skip + i];
        done += take;
    }
}

LookupResult
TableReader::lookup(Addr term, u32 hash, Addr module_base,
                    const WalkNeeds *needs) const
{
    LookupResult res;
    REV_ASSERT(valid_, "lookup on invalid table");
    REV_ASSERT(mode_ != ValidationMode::CfiOnly,
               "use lookupSite for CFI-only tables");

    const unsigned rs = recordSize(mode_);
    const u32 term_off = static_cast<u32>(term - module_base);

    auto satisfied = [&]() {
        if (!needs)
            return false;
        const bool t_ok =
            !needs->target ||
            std::find(res.targets.begin(), res.targets.end(),
                      *needs->target) != res.targets.end();
        const bool p_ok =
            !needs->pred ||
            std::find(res.retPreds.begin(), res.retPreds.end(),
                      *needs->pred) != res.retPreds.end();
        return t_ok && p_ok;
    };

    u32 idx = static_cast<u32>(term_off % numBuckets_) + 1;
    u64 steps = 0;
    while (idx != 0 && idx <= numRecords_ && steps++ <= numRecords_) {
        const u64 off = kHeaderBytes + u64{idx - 1} * rs;
        res.memAddrs.push_back(base_ + off);
        u8 rec[24];
        readDec(off, rec, rs);

        const u8 kind = rec[0] & 3;
        if (kind == 0)
            break; // empty bucket slot: no entry for this block
        if (kind == kRecCont) {
            // Another entry's spill record in the chain: skip over it.
            idx = get24(rec + kNextFieldOffset);
            continue;
        }

        if (get24(rec + 1) == term_off) {
            // Sec. V.B: the generated hash is the discriminator among
            // validation units sharing a terminator.
            res.termSeen = true;
            if (get32(rec + 4) == hash) {
                res.found = true;
                res.termKind = static_cast<TermKind>((rec[0] >> 2) & 7);
                res.hash = hash;
                if (mode_ == ValidationMode::Aggressive) {
                    if (const u32 s0 = get24(rec + 11))
                        res.targets.push_back(slotDecode(s0));
                    if (const u32 s1 = get24(rec + 14))
                        res.targets.push_back(slotDecode(s1));
                }
                // Walk this entry's spill records (until satisfied).
                // Corrupt chains are bounded: a tampered "next" pointer
                // must not be able to hang the walker (fail-closed).
                u32 cont_idx = get24(rec + kNextFieldOffset);
                u64 cont_steps = 0;
                while (!satisfied() && cont_idx != 0 &&
                       cont_idx <= numRecords_ &&
                       cont_steps++ <= numRecords_) {
                    const u64 coff = kHeaderBytes + u64{cont_idx - 1} * rs;
                    res.memAddrs.push_back(base_ + coff);
                    u8 cont[24];
                    readDec(coff, cont, rs);
                    if ((cont[0] & 3) != kRecCont)
                        break; // next entry in the bucket chain
                    unsigned nt, np;
                    if (mode_ == ValidationMode::Aggressive) {
                        nt = (cont[0] >> 2) & 7;
                        np = (cont[0] >> 5) & 7;
                    } else {
                        nt = (cont[0] >> 2) & 3;
                        np = (cont[0] >> 4) & 3;
                    }
                    const unsigned *slot_off = contSlotOffsets(mode_);
                    // A tampered count byte can decode more slots than
                    // the record carries; the builder never emits more
                    // than contSlots(), so the clamp is a no-op for
                    // intact tables and bounds the walk for corrupt ones.
                    const unsigned max_slots = contSlots(mode_);
                    if (nt > max_slots)
                        nt = max_slots;
                    if (np > max_slots - nt)
                        np = max_slots - nt;
                    for (unsigned sidx = 0; sidx < nt + np; ++sidx) {
                        const Addr a =
                            slotDecode(get24(cont + slot_off[sidx]));
                        if (sidx < nt)
                            res.targets.push_back(a);
                        else
                            res.retPreds.push_back(a);
                    }
                    cont_idx = get24(cont + kNextFieldOffset);
                }
                return res;
            }
        }
        idx = get24(rec + kNextFieldOffset);
    }
    return res;
}

LookupResult
TableReader::lookupSite(Addr term, Addr module_base,
                        const WalkNeeds *needs) const
{
    LookupResult res;
    REV_ASSERT(valid_, "lookupSite on invalid table");
    REV_ASSERT(mode_ == ValidationMode::CfiOnly,
               "lookupSite only for CFI-only tables");

    const unsigned rs = recordSize(mode_);
    const u32 term_off = static_cast<u32>(term - module_base);

    u32 idx = static_cast<u32>(term_off % numBuckets_) + 1;
    u64 steps = 0;
    while (idx != 0 && idx <= numRecords_ && steps++ <= numRecords_) {
        const u64 off = kHeaderBytes + u64{idx - 1} * rs;
        res.memAddrs.push_back(base_ + off);
        u8 rec[12];
        readDec(off, rec, rs);
        const u8 kind = rec[0] & 3;
        if (kind == 0)
            break;
        if (kind == kRecPrimary && get24(rec + 1) == term_off) {
            res.found = true;
            res.termKind = static_cast<TermKind>((rec[0] >> 2) & 7);
            res.targets.push_back(slotDecode(get24(rec + 4)));
            if (needs && needs->target &&
                std::find(res.targets.begin(), res.targets.end(),
                          *needs->target) != res.targets.end()) {
                return res;
            }
        }
        idx = get24(rec + kNextFieldOffset);
    }
    return res;
}

} // namespace rev::sig
