/**
 * @file
 * REV validation modes (Sec. V.B, V.C, V.D).
 */

#ifndef REV_SIG_MODE_HPP
#define REV_SIG_MODE_HPP

#include "common/types.hpp"

namespace rev::sig
{

/**
 * What the reference signature tables encode and the hardware validates.
 */
enum class ValidationMode : u8
{
    /**
     * Default REV (Sec. V.B): 4-byte BB crypto hash per validation unit;
     * explicit target lists only for computed transfers; delayed return
     * validation via predecessor (RET-address) lists on return-site
     * blocks. Static branch targets are validated implicitly by the hash.
     */
    Full = 0,

    /**
     * Aggressive CFA (Sec. V.C): additionally validates the target address
     * of *every* branch; entries carry up to two targets inline, so tables
     * are larger (40-65% of binary vs 15-52%).
     */
    Aggressive = 1,

    /**
     * CFI-only (Sec. V.D): control-flow integrity without code hashes.
     * Entries exist only for computed transfers and returns (roughly 10%
     * of branch sites), giving tables of only a few percent of the binary.
     */
    CfiOnly = 2,
};

/** Display name. */
const char *modeName(ValidationMode mode);

} // namespace rev::sig

#endif // REV_SIG_MODE_HPP
