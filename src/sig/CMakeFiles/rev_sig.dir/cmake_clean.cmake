file(REMOVE_RECURSE
  "CMakeFiles/rev_sig.dir/mode.cpp.o"
  "CMakeFiles/rev_sig.dir/mode.cpp.o.d"
  "CMakeFiles/rev_sig.dir/sigstore.cpp.o"
  "CMakeFiles/rev_sig.dir/sigstore.cpp.o.d"
  "CMakeFiles/rev_sig.dir/table.cpp.o"
  "CMakeFiles/rev_sig.dir/table.cpp.o.d"
  "librev_sig.a"
  "librev_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
