file(REMOVE_RECURSE
  "librev_sig.a"
)
