# Empty dependencies file for rev_sig.
# This may be replaced when dependencies are built.
