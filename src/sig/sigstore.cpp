#include "sig/sigstore.hpp"

#include <algorithm>

#include "common/bitutil.hpp"
#include "common/logging.hpp"
#include "crypto/cubehash_lanes.hpp"

namespace rev::sig
{

SigStore::SigStore(const prog::Program &program, ValidationMode mode,
                   const crypto::KeyVault &vault, u64 seed,
                   const prog::SplitLimits &limits, unsigned hash_rounds,
                   const SigStore *cfg_donor)
    : mode_(mode), hashRounds_(hash_rounds), vault_(&vault), seed_(seed),
      limits_(limits)
{
    rebuildWith(program, cfg_donor);
}

void
SigStore::rebuild(const prog::Program &program)
{
    rebuildWith(program, nullptr);
}

void
SigStore::rebuildWith(const prog::Program &program, const SigStore *cfg_donor)
{
    sigs_.clear();
    images_.clear();
    Rng rng(seed_ ^ 0x5167a11eULL ^ (generation_ * 0x9e3779b9ULL));
    ++generation_;
    Addr next_base = kSigTableRegion;

    // A donor is usable only when it analyzed exactly these modules with
    // the same split limits; CFG derivation does not depend on the mode.
    const bool donate = cfg_donor && cfg_donor->limits_ == limits_ &&
                        cfg_donor->sigs_.size() == program.modules().size() &&
                        [&] {
                            for (std::size_t i = 0;
                                 i < cfg_donor->sigs_.size(); ++i)
                                if (cfg_donor->sigs_[i].module !=
                                    &program.modules()[i])
                                    return false;
                            return true;
                        }();

    // Derive every module's CFG, then resolve cross-module return edges
    // (the trusted static linker's knowledge, Sec. IV.B). linkCfgs is
    // idempotent, so donated CFGs (already linked) need no second pass.
    for (std::size_t i = 0; i < program.modules().size(); ++i) {
        const auto &mod = program.modules()[i];
        ModuleSig sig;
        sig.module = &mod;
        sig.cfg = donate ? cfg_donor->sigs_[i].cfg
                         : prog::buildCfg(mod, limits_);
        sigs_.push_back(std::move(sig));
    }
    if (!donate) {
        std::vector<prog::Cfg *> cfgs;
        for (auto &sig : sigs_)
            cfgs.push_back(&sig.cfg);
        prog::linkCfgs(cfgs);
    }

    // Block hashes depend only on the module bytes and the round count, so
    // a donor built with the same rounds (any non-CFI mode) supplies them.
    const bool donate_hashes =
        donate && cfg_donor->hashRounds_ == hashRounds_;

    for (std::size_t i = 0; i < sigs_.size(); ++i) {
        auto &sig = sigs_[i];
        if (mode_ != ValidationMode::CfiOnly) {
            if (donate_hashes && cfg_donor->sigs_[i].blockHashes.size() ==
                                     sig.cfg.blocks().size()) {
                sig.blockHashes = cfg_donor->sigs_[i].blockHashes;
            } else {
                // Hash the module's blocks four lanes at a time through
                // the multi-lane CubeHash (bit-identical to bbHash).
                const auto &blocks = sig.cfg.blocks();
                const auto &mod = *sig.module;
                sig.blockHashes.resize(blocks.size());
                BbHashJob jobs[crypto::CubeHashX4::kLanes];
                for (std::size_t b = 0; b < blocks.size();
                     b += crypto::CubeHashX4::kLanes) {
                    const unsigned n = static_cast<unsigned>(
                        std::min<std::size_t>(crypto::CubeHashX4::kLanes,
                                              blocks.size() - b));
                    for (unsigned l = 0; l < n; ++l) {
                        const auto &bb = blocks[b + l];
                        REV_ASSERT(bb.start >= mod.base &&
                                       bb.end <= mod.codeEnd(),
                                   "SigStore: block outside module code");
                        jobs[l] = {mod.image.data() + (bb.start - mod.base),
                                   bb.sizeBytes(), bb.start, bb.term};
                    }
                    bbHashBatch(jobs, n, hashRounds_,
                                sig.blockHashes.data() + b);
                }
            }
        }
        const crypto::AesKey key = vault_->generateModuleKey(rng);
        const u64 nonce = rng.next();
        BuiltTable built =
            buildTable(*sig.module, sig.cfg, mode_, *vault_, key, nonce,
                       hashRounds_,
                       sig.blockHashes.empty() ? nullptr : &sig.blockHashes);
        sig.tableBase = next_base;
        sig.stats = built.stats;
        next_base = roundUp(next_base + built.bytes.size() + 0x100, 0x40);
        images_.push_back(std::move(built.bytes));
    }
}

void
SigStore::loadInto(SparseMemory &mem) const
{
    for (std::size_t i = 0; i < sigs_.size(); ++i)
        mem.writeBytes(sigs_[i].tableBase, images_[i]);
}

const ModuleSig *
SigStore::findByCode(Addr addr) const
{
    for (const auto &sig : sigs_)
        if (sig.module->containsCode(addr))
            return &sig;
    return nullptr;
}

u64
SigStore::totalTableBytes() const
{
    u64 total = 0;
    for (const auto &img : images_)
        total += img.size();
    return total;
}

} // namespace rev::sig
