# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("isa")
subdirs("program")
subdirs("sig")
subdirs("mem")
subdirs("validate")
subdirs("cpu")
subdirs("core")
subdirs("verifier")
subdirs("attacks")
subdirs("workloads")
subdirs("redteam")
