/**
 * @file
 * TLB hierarchy (Table 2): 32-entry L1 I-TLB and 128-entry L1 D-TLB, each
 * backed by a 512-entry L2 TLB. The D-TLB is shared with the signature
 * cache through an extra port (Sec. VIII), so SC fills translate through
 * the same structures as data accesses.
 */

#ifndef REV_MEM_TLB_HPP
#define REV_MEM_TLB_HPP

#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace rev::mem
{

/**
 * Fully-associative LRU TLB of page-granular entries.
 */
class Tlb
{
  public:
    Tlb(std::string name, unsigned entries, unsigned page_shift = 12);

    // The page index holds iterators into lru_; a default copy would
    // leave them pointing into the source's list. Rebuild the index from
    // the copied list instead (snapshot capture/fork copies TLB state).
    Tlb(const Tlb &other)
        : name_(other.name_), pageShift_(other.pageShift_),
          capacity_(other.capacity_), lru_(other.lru_),
          hits_(other.hits_), misses_(other.misses_)
    {
        reindex();
    }

    Tlb &
    operator=(const Tlb &other)
    {
        if (this != &other) {
            name_ = other.name_;
            pageShift_ = other.pageShift_;
            capacity_ = other.capacity_;
            lru_ = other.lru_;
            hits_ = other.hits_;
            misses_ = other.misses_;
            reindex();
        }
        return *this;
    }

    /** Look up (and allocate on miss). Returns true on hit. */
    bool access(Addr addr);

    /** Tag check without state change. */
    bool probe(Addr addr) const;

    void reset();

    /** Zero the counters but keep the entries (warm measurement). */
    void
    resetStats()
    {
        hits_.reset();
        misses_.reset();
    }

    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }
    void addStats(stats::StatGroup &group) const;

  private:
    void
    reindex()
    {
        index_.clear();
        for (auto it = lru_.begin(); it != lru_.end(); ++it)
            index_[*it] = it;
    }

    // True-LRU with O(1) lookup: an MRU-ordered list plus a page index.
    // (A linear tag scan is what the hardware does in parallel; the map
    // only speeds the simulation, semantics are identical.)
    std::string name_;
    unsigned pageShift_;
    std::size_t capacity_;
    std::list<u64> lru_; ///< front = most recently used page
    std::unordered_map<u64, std::list<u64>::iterator> index_;
    stats::Counter hits_, misses_;
};

/** TLB timing parameters. */
struct TlbConfig
{
    unsigned itlbEntries = 32;
    unsigned dtlbEntries = 128;
    unsigned l2Entries = 512;
    unsigned l2Latency = 6;       ///< extra cycles on an L1 TLB miss
    unsigned pageWalkLatency = 40; ///< extra cycles on an L2 TLB miss
};

/**
 * Two-level TLB hierarchy. translate() returns the extra latency the
 * translation adds (0 on an L1 hit).
 */
class TlbHierarchy
{
  public:
    /** @param prefix Prepended to the stat names ("" for the historical
     *  single-core rows, "cK." for core K's private TLBs). */
    explicit TlbHierarchy(const TlbConfig &cfg = {},
                          const std::string &prefix = "");

    /** @param instr Use the I-TLB path (otherwise D-TLB, shared with SC). */
    unsigned translate(Addr addr, bool instr);

    void reset();

    /** Zero the counters but keep the entries. */
    void
    resetStats()
    {
        itlb_.resetStats();
        dtlb_.resetStats();
        l2_.resetStats();
        pageWalks_.reset();
    }

    const Tlb &itlb() const { return itlb_; }
    const Tlb &dtlb() const { return dtlb_; }
    const Tlb &l2() const { return l2_; }
    u64 pageWalks() const { return pageWalks_; }

    void addStats(stats::StatGroup &group) const;

  private:
    TlbConfig cfg_;
    std::string prefix_;
    Tlb itlb_, dtlb_, l2_;
    stats::Counter pageWalks_;
};

} // namespace rev::mem

#endif // REV_MEM_TLB_HPP
