/**
 * @file
 * The full memory system of the simulated machine: split L1 I/D, unified
 * L2, banked DRAM, and the TLB hierarchy (Table 2 configuration).
 *
 * Requests are latency-composed per level with simple port contention at
 * the L2 and bank contention at the DRAM. Signature-cache fills use the
 * L1 D-cache through an extra port and the shared D-TLB, per Sec. IV.A /
 * Sec. VIII; their priority relative to other request classes is realized
 * by issue order (the core issues data misses first, then SC fills, then
 * instruction fetches and prefetches in each cycle).
 *
 * Multicore: the system exposes one request *port* per core. Each port
 * owns private L1 I/D tag arrays and a private TLB hierarchy; the L2,
 * the DRAM banks, and the background DMA engine are shared. Cross-core
 * arbitration is deterministic: requests serialize on the shared
 * single-ported L2 in issue order (the simulator's core scheduler calls
 * access() sequentially, lower core id first within a scheduling round),
 * and per-port counters record how many cycles each core — and each
 * core's SC-fill traffic specifically — spent waiting behind *another*
 * core's request at the L2 port. With one port the model is exactly the
 * historical single-core system, row for row in the stats output.
 */

#ifndef REV_MEM_MEMSYS_HPP
#define REV_MEM_MEMSYS_HPP

#include <array>
#include <string>
#include <vector>

#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/tlb.hpp"

namespace rev::mem
{

/** Request classes, in descending service priority (Sec. IV.A). */
enum class AccessType : u8
{
    DataRead = 0,  ///< demand load miss path
    DataWrite = 1, ///< store writeback path
    ScFill = 2,    ///< signature-cache miss service
    InstrFetch = 3,
    Prefetch = 4,
};

inline constexpr unsigned kNumAccessTypes = 5;

/** Memory system configuration (defaults = Table 2). */
struct MemConfig
{
    u64 l1iBytes = 64 * 1024;
    unsigned l1iAssoc = 4;
    unsigned l1iLatency = 2;

    u64 l1dBytes = 64 * 1024;
    unsigned l1dAssoc = 4;
    unsigned l1dLatency = 2;

    u64 l2Bytes = 512 * 1024;
    unsigned l2Assoc = 8;
    unsigned l2Latency = 5;

    unsigned lineBytes = 64;

    DramConfig dram;
    TlbConfig tlb;

    /**
     * Background DMA traffic (Table 2 lists 64 DMA channels with 64-byte
     * bursts). When dmaIntervalCycles > 0, one channel issues a burst to
     * the DRAM banks every interval, round-robin across channels --
     * modeling I/O interference with demand and SC-fill traffic. DMA
     * bypasses the caches.
     */
    unsigned dmaChannels = 64;
    u64 dmaIntervalCycles = 0; ///< 0 = no background DMA
    Addr dmaBufferBase = 0x30000000;
};

/** Outcome of one memory access. */
struct AccessResult
{
    Cycle completeAt = 0;
    bool l1Hit = false;
    bool l2Hit = false;
};

/**
 * Latency-composing memory system.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemConfig &cfg = {}, unsigned num_cores = 1);

    /**
     * Perform an access of @p type to @p addr arriving at cycle @p now
     * through core @p core's port.
     */
    AccessResult access(Addr addr, AccessType type, Cycle now,
                        unsigned core = 0);

    void reset();

    /** Zero every counter but keep cache/TLB/DRAM state: measurement can
     *  start from a warmed machine. */
    void resetStats();

    const MemConfig &config() const { return cfg_; }

    /** Number of request ports (= cores). */
    unsigned numCores() const { return static_cast<unsigned>(ports_.size()); }

    const SetAssocCache &l1i(unsigned core = 0) const { return ports_[core].l1i; }
    const SetAssocCache &l1d(unsigned core = 0) const { return ports_[core].l1d; }
    const SetAssocCache &l2() const { return l2_; }
    const DramModel &dram() const { return dram_; }
    const TlbHierarchy &tlbs(unsigned core = 0) const { return ports_[core].tlbs; }

    /** DMA bursts issued so far. */
    u64 dmaBursts() const { return dmaBursts_; }

    /** Per-request-class counters, aggregated across cores (Figs. 10/11). */
    u64 accesses(AccessType t) const { return accesses_[idx(t)]; }
    u64 l1Misses(AccessType t) const { return l1Misses_[idx(t)]; }
    u64 l2Misses(AccessType t) const { return l2Misses_[idx(t)]; }

    /** Per-core request-class counters. */
    u64 coreAccesses(unsigned core, AccessType t) const
    {
        return ports_[core].accesses[idx(t)];
    }
    u64 coreL1Misses(unsigned core, AccessType t) const
    {
        return ports_[core].l1Misses[idx(t)];
    }
    u64 coreL2Misses(unsigned core, AccessType t) const
    {
        return ports_[core].l2Misses[idx(t)];
    }

    /** Cycles core @p core's requests spent queued behind another core at
     *  the shared L2 port. */
    u64 xcoreL2WaitCycles(unsigned core) const
    {
        return ports_[core].xcoreL2Wait;
    }

    /** The SC-fill-only portion of xcoreL2WaitCycles: signature-cache
     *  fill starvation caused by other cores' traffic. */
    u64 xcoreScFillWaitCycles(unsigned core) const
    {
        return ports_[core].xcoreScFillWait;
    }

    void addStats(stats::StatGroup &group) const;

  private:
    static unsigned idx(AccessType t) { return static_cast<unsigned>(t); }

    /** Per-core request port: private L1s + TLBs, private counters. */
    struct Port
    {
        Port(const MemConfig &cfg, const std::string &prefix);

        std::string prefix; ///< "" at N=1, "cK." at N>1
        SetAssocCache l1i, l1d;
        TlbHierarchy tlbs;
        std::array<stats::Counter, kNumAccessTypes> accesses;
        std::array<stats::Counter, kNumAccessTypes> l1Misses;
        std::array<stats::Counter, kNumAccessTypes> l2Misses;
        stats::Counter xcoreL2Wait;
        stats::Counter xcoreScFillWait;
    };

    MemConfig cfg_;
    std::vector<Port> ports_;
    SetAssocCache l2_;
    DramModel dram_;

    /** Issue any background DMA bursts scheduled before @p now. */
    void advanceDma(Cycle now);

    Cycle l2PortFree_ = 0;
    unsigned lastL2Core_ = 0;
    Cycle nextDmaAt_ = 0;
    unsigned dmaChannel_ = 0;
    stats::Counter dmaBursts_;

    std::array<stats::Counter, kNumAccessTypes> accesses_;
    std::array<stats::Counter, kNumAccessTypes> l1Misses_;
    std::array<stats::Counter, kNumAccessTypes> l2Misses_;
};

/** Display name of an access type. */
const char *accessTypeName(AccessType t);

} // namespace rev::mem

#endif // REV_MEM_MEMSYS_HPP
