/**
 * @file
 * The full memory system of the simulated machine: split L1 I/D, unified
 * L2, banked DRAM, and the TLB hierarchy (Table 2 configuration).
 *
 * Requests are latency-composed per level with simple port contention at
 * the L2 and bank contention at the DRAM. Signature-cache fills use the
 * L1 D-cache through an extra port and the shared D-TLB, per Sec. IV.A /
 * Sec. VIII; their priority relative to other request classes is realized
 * by issue order (the core issues data misses first, then SC fills, then
 * instruction fetches and prefetches in each cycle).
 */

#ifndef REV_MEM_MEMSYS_HPP
#define REV_MEM_MEMSYS_HPP

#include <array>

#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/tlb.hpp"

namespace rev::mem
{

/** Request classes, in descending service priority (Sec. IV.A). */
enum class AccessType : u8
{
    DataRead = 0,  ///< demand load miss path
    DataWrite = 1, ///< store writeback path
    ScFill = 2,    ///< signature-cache miss service
    InstrFetch = 3,
    Prefetch = 4,
};

inline constexpr unsigned kNumAccessTypes = 5;

/** Memory system configuration (defaults = Table 2). */
struct MemConfig
{
    u64 l1iBytes = 64 * 1024;
    unsigned l1iAssoc = 4;
    unsigned l1iLatency = 2;

    u64 l1dBytes = 64 * 1024;
    unsigned l1dAssoc = 4;
    unsigned l1dLatency = 2;

    u64 l2Bytes = 512 * 1024;
    unsigned l2Assoc = 8;
    unsigned l2Latency = 5;

    unsigned lineBytes = 64;

    DramConfig dram;
    TlbConfig tlb;

    /**
     * Background DMA traffic (Table 2 lists 64 DMA channels with 64-byte
     * bursts). When dmaIntervalCycles > 0, one channel issues a burst to
     * the DRAM banks every interval, round-robin across channels --
     * modeling I/O interference with demand and SC-fill traffic. DMA
     * bypasses the caches.
     */
    unsigned dmaChannels = 64;
    u64 dmaIntervalCycles = 0; ///< 0 = no background DMA
    Addr dmaBufferBase = 0x30000000;
};

/** Outcome of one memory access. */
struct AccessResult
{
    Cycle completeAt = 0;
    bool l1Hit = false;
    bool l2Hit = false;
};

/**
 * Latency-composing memory system.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemConfig &cfg = {});

    /**
     * Perform an access of @p type to @p addr arriving at cycle @p now.
     */
    AccessResult access(Addr addr, AccessType type, Cycle now);

    void reset();

    /** Zero every counter but keep cache/TLB/DRAM state: measurement can
     *  start from a warmed machine. */
    void resetStats();

    const MemConfig &config() const { return cfg_; }

    const SetAssocCache &l1i() const { return l1i_; }
    const SetAssocCache &l1d() const { return l1d_; }
    const SetAssocCache &l2() const { return l2_; }
    const DramModel &dram() const { return dram_; }
    const TlbHierarchy &tlbs() const { return tlbs_; }

    /** DMA bursts issued so far. */
    u64 dmaBursts() const { return dmaBursts_; }

    /** Per-request-class counters (drives Figs. 10/11). */
    u64 accesses(AccessType t) const { return accesses_[idx(t)]; }
    u64 l1Misses(AccessType t) const { return l1Misses_[idx(t)]; }
    u64 l2Misses(AccessType t) const { return l2Misses_[idx(t)]; }

    void addStats(stats::StatGroup &group) const;

  private:
    static unsigned idx(AccessType t) { return static_cast<unsigned>(t); }

    MemConfig cfg_;
    SetAssocCache l1i_, l1d_, l2_;
    DramModel dram_;
    TlbHierarchy tlbs_;

    /** Issue any background DMA bursts scheduled before @p now. */
    void advanceDma(Cycle now);

    Cycle l2PortFree_ = 0;
    Cycle nextDmaAt_ = 0;
    unsigned dmaChannel_ = 0;
    stats::Counter dmaBursts_;

    std::array<stats::Counter, kNumAccessTypes> accesses_;
    std::array<stats::Counter, kNumAccessTypes> l1Misses_;
    std::array<stats::Counter, kNumAccessTypes> l2Misses_;
};

/** Display name of an access type. */
const char *accessTypeName(AccessType t);

} // namespace rev::mem

#endif // REV_MEM_MEMSYS_HPP
