#include "mem/tlb.hpp"

namespace rev::mem
{

Tlb::Tlb(std::string name, unsigned entries, unsigned page_shift)
    : name_(std::move(name)), pageShift_(page_shift), capacity_(entries)
{
    index_.reserve(entries * 2);
}

bool
Tlb::access(Addr addr)
{
    const u64 page = addr >> pageShift_;
    auto it = index_.find(page);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second); // refresh to MRU
        ++hits_;
        return true;
    }
    ++misses_;
    lru_.push_front(page);
    index_[page] = lru_.begin();
    if (lru_.size() > capacity_) {
        index_.erase(lru_.back());
        lru_.pop_back();
    }
    return false;
}

bool
Tlb::probe(Addr addr) const
{
    return index_.count(addr >> pageShift_) != 0;
}

void
Tlb::reset()
{
    lru_.clear();
    index_.clear();
    hits_.reset();
    misses_.reset();
}

void
Tlb::addStats(stats::StatGroup &group) const
{
    group.add(name_ + ".hits", &hits_);
    group.add(name_ + ".misses", &misses_);
}

TlbHierarchy::TlbHierarchy(const TlbConfig &cfg, const std::string &prefix)
    : cfg_(cfg), prefix_(prefix), itlb_(prefix + "itlb", cfg.itlbEntries),
      dtlb_(prefix + "dtlb", cfg.dtlbEntries),
      l2_(prefix + "l2tlb", cfg.l2Entries)
{
}

unsigned
TlbHierarchy::translate(Addr addr, bool instr)
{
    Tlb &l1 = instr ? itlb_ : dtlb_;
    if (l1.access(addr))
        return 0;
    if (l2_.access(addr))
        return cfg_.l2Latency;
    ++pageWalks_;
    return cfg_.l2Latency + cfg_.pageWalkLatency;
}

void
TlbHierarchy::reset()
{
    itlb_.reset();
    dtlb_.reset();
    l2_.reset();
    pageWalks_.reset();
}

void
TlbHierarchy::addStats(stats::StatGroup &group) const
{
    itlb_.addStats(group);
    dtlb_.addStats(group);
    l2_.addStats(group);
    group.add(prefix_ + "tlb.page_walks", &pageWalks_);
}

} // namespace rev::mem
