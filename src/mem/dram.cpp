#include "mem/dram.hpp"

namespace rev::mem
{

DramModel::DramModel(const DramConfig &cfg) : cfg_(cfg)
{
    banks_.resize(cfg_.banks);
}

Cycle
DramModel::access(Addr addr, Cycle now)
{
    // Line-interleaved bank mapping; rows are contiguous within a bank.
    const u64 line = addr / cfg_.burstBytes;
    const unsigned bank_idx = static_cast<unsigned>(line % cfg_.banks);
    const u64 row = addr / cfg_.rowBytes;
    Bank &bank = banks_[bank_idx];

    const Cycle start = std::max(now, bank.freeAt);
    unsigned latency;
    if (bank.openRow == row) {
        latency = cfg_.openPageLatency;
        ++rowHits_;
    } else {
        latency = cfg_.firstChunkLatency;
        ++rowMisses_;
        bank.openRow = row;
    }
    const Cycle done = start + latency;
    bank.freeAt = start + cfg_.burstCycles;
    return done;
}

void
DramModel::reset()
{
    for (auto &bank : banks_)
        bank = Bank{};
    rowHits_.reset();
    rowMisses_.reset();
}

void
DramModel::addStats(stats::StatGroup &group) const
{
    group.add("dram.row_hits", &rowHits_);
    group.add("dram.row_misses", &rowMisses_);
}

} // namespace rev::mem
