/**
 * @file
 * Set-associative cache tag model with true-LRU replacement.
 *
 * The simulator is execute-functional / timing-directed: caches track tags,
 * dirty bits, and recency only; data values live in the SparseMemory image.
 */

#ifndef REV_MEM_CACHE_HPP
#define REV_MEM_CACHE_HPP

#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace rev::mem
{

/**
 * Tag array of one cache level.
 */
class SetAssocCache
{
  public:
    /**
     * @param name       Stats prefix (e.g. "l1d").
     * @param size_bytes Total capacity; must be a power of two.
     * @param assoc      Ways per set.
     * @param line_bytes Line size; must be a power of two.
     */
    SetAssocCache(std::string name, u64 size_bytes, unsigned assoc,
                  unsigned line_bytes);

    /**
     * Access (and allocate on miss). Returns true on hit. If the access
     * misses and evicts a dirty line, its address is returned through
     * @p writeback.
     */
    bool access(Addr addr, bool is_write,
                std::optional<Addr> *writeback = nullptr);

    /** Tag check without any state change. */
    bool probe(Addr addr) const;

    /** Invalidate the line containing @p addr if present. */
    void invalidateLine(Addr addr);

    /** Drop all lines (e.g., between benchmark runs). */
    void reset();

    /** Zero the counters but keep the tag state (warm measurement). */
    void
    resetStats()
    {
        hits_.reset();
        misses_.reset();
        writebacks_.reset();
    }

    unsigned lineBytes() const { return lineBytes_; }
    u64 sizeBytes() const { return static_cast<u64>(numSets_) * assoc_ * lineBytes_; }
    unsigned assoc() const { return assoc_; }

    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }
    u64 writebacks() const { return writebacks_; }

    /** Register hit/miss counters with @p group. */
    void addStats(stats::StatGroup &group) const;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        u64 lastUse = 0;
    };

    u64 tagOf(Addr addr) const { return addr >> lineShift_; }
    unsigned setOf(Addr addr) const
    {
        return static_cast<unsigned>((addr >> lineShift_) & (numSets_ - 1));
    }

    std::string name_;
    unsigned assoc_;
    unsigned lineBytes_;
    unsigned lineShift_;
    unsigned numSets_;
    std::vector<Line> lines_; ///< numSets_ * assoc_
    u64 useClock_ = 0;

    stats::Counter hits_, misses_, writebacks_;
};

} // namespace rev::mem

#endif // REV_MEM_CACHE_HPP
