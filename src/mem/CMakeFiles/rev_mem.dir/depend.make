# Empty dependencies file for rev_mem.
# This may be replaced when dependencies are built.
