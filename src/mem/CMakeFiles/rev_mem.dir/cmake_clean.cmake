file(REMOVE_RECURSE
  "CMakeFiles/rev_mem.dir/cache.cpp.o"
  "CMakeFiles/rev_mem.dir/cache.cpp.o.d"
  "CMakeFiles/rev_mem.dir/dram.cpp.o"
  "CMakeFiles/rev_mem.dir/dram.cpp.o.d"
  "CMakeFiles/rev_mem.dir/memsys.cpp.o"
  "CMakeFiles/rev_mem.dir/memsys.cpp.o.d"
  "CMakeFiles/rev_mem.dir/tlb.cpp.o"
  "CMakeFiles/rev_mem.dir/tlb.cpp.o.d"
  "librev_mem.a"
  "librev_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
