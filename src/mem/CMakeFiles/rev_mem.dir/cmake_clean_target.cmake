file(REMOVE_RECURSE
  "librev_mem.a"
)
