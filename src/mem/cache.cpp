#include "mem/cache.hpp"

#include "common/bitutil.hpp"
#include "common/logging.hpp"

namespace rev::mem
{

SetAssocCache::SetAssocCache(std::string name, u64 size_bytes,
                             unsigned assoc, unsigned line_bytes)
    : name_(std::move(name)), assoc_(assoc), lineBytes_(line_bytes)
{
    if (!isPow2(size_bytes) || !isPow2(line_bytes))
        fatal("cache ", name_, ": size and line size must be powers of two");
    if (assoc_ == 0 || size_bytes % (static_cast<u64>(assoc_) * line_bytes))
        fatal("cache ", name_, ": capacity not divisible into sets");
    lineShift_ = log2i(line_bytes);
    const u64 sets = size_bytes / (static_cast<u64>(assoc_) * line_bytes);
    if (!isPow2(sets))
        fatal("cache ", name_, ": set count must be a power of two");
    numSets_ = static_cast<unsigned>(sets);
    lines_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

bool
SetAssocCache::access(Addr addr, bool is_write,
                      std::optional<Addr> *writeback)
{
    const u64 tag = tagOf(addr);
    Line *set = &lines_[static_cast<std::size_t>(setOf(addr)) * assoc_];

    Line *victim = &set[0];
    for (unsigned w = 0; w < assoc_; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = ++useClock_;
            line.dirty |= is_write;
            ++hits_;
            return true;
        }
        if (!victim->valid)
            continue; // keep first invalid way as victim
        if (!line.valid || line.lastUse < victim->lastUse)
            victim = &line;
    }

    ++misses_;
    if (victim->valid && victim->dirty) {
        ++writebacks_;
        if (writeback)
            *writeback = victim->tag << lineShift_;
    }
    victim->tag = tag;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lastUse = ++useClock_;
    return false;
}

bool
SetAssocCache::probe(Addr addr) const
{
    const u64 tag = tagOf(addr);
    const Line *set = &lines_[static_cast<std::size_t>(setOf(addr)) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (set[w].valid && set[w].tag == tag)
            return true;
    return false;
}

void
SetAssocCache::invalidateLine(Addr addr)
{
    const u64 tag = tagOf(addr);
    Line *set = &lines_[static_cast<std::size_t>(setOf(addr)) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].valid = false;
            set[w].dirty = false;
        }
    }
}

void
SetAssocCache::reset()
{
    for (auto &line : lines_)
        line = Line{};
    hits_.reset();
    misses_.reset();
    writebacks_.reset();
}

void
SetAssocCache::addStats(stats::StatGroup &group) const
{
    group.add(name_ + ".hits", &hits_);
    group.add(name_ + ".misses", &misses_);
    group.add(name_ + ".writebacks", &writebacks_);
}

} // namespace rev::mem
