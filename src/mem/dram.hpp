/**
 * @file
 * Banked DRAM model with open-page row buffers (Table 2: 100-cycle first
 * chunk, 8 banks, 64-byte bursts, faster access to open pages).
 */

#ifndef REV_MEM_DRAM_HPP
#define REV_MEM_DRAM_HPP

#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace rev::mem
{

/** DRAM timing parameters. */
struct DramConfig
{
    unsigned banks = 8;
    unsigned firstChunkLatency = 100; ///< row-miss access (cycles)
    unsigned openPageLatency = 60;    ///< row-hit access (cycles)
    unsigned burstBytes = 64;
    unsigned rowBytes = 4096; ///< open-page (row buffer) granularity
    unsigned burstCycles = 4; ///< bank busy time transferring one burst
};

/**
 * Per-bank open-row and availability tracking.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &cfg = {});

    /**
     * Schedule a 64-byte burst for the line containing @p addr, arriving
     * at the controller at @p now. Returns the cycle the data is
     * available.
     */
    Cycle access(Addr addr, Cycle now);

    void reset();

    /** Zero the counters but keep row/bank state. */
    void
    resetStats()
    {
        rowHits_.reset();
        rowMisses_.reset();
    }

    u64 rowHits() const { return rowHits_; }
    u64 rowMisses() const { return rowMisses_; }
    u64 accesses() const { return static_cast<u64>(rowHits_) + rowMisses_; }

    void addStats(stats::StatGroup &group) const;

  private:
    struct Bank
    {
        Cycle freeAt = 0;
        u64 openRow = ~u64{0};
    };

    DramConfig cfg_;
    std::vector<Bank> banks_;
    stats::Counter rowHits_, rowMisses_;
};

} // namespace rev::mem

#endif // REV_MEM_DRAM_HPP
