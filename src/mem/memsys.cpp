#include "mem/memsys.hpp"

namespace rev::mem
{

const char *
accessTypeName(AccessType t)
{
    switch (t) {
      case AccessType::DataRead: return "data_read";
      case AccessType::DataWrite: return "data_write";
      case AccessType::ScFill: return "sc_fill";
      case AccessType::InstrFetch: return "instr_fetch";
      case AccessType::Prefetch: return "prefetch";
    }
    return "?";
}

MemorySystem::MemorySystem(const MemConfig &cfg)
    : cfg_(cfg),
      l1i_("l1i", cfg.l1iBytes, cfg.l1iAssoc, cfg.lineBytes),
      l1d_("l1d", cfg.l1dBytes, cfg.l1dAssoc, cfg.lineBytes),
      l2_("l2", cfg.l2Bytes, cfg.l2Assoc, cfg.lineBytes),
      dram_(cfg.dram), tlbs_(cfg.tlb)
{
}

void
MemorySystem::advanceDma(Cycle now)
{
    if (cfg_.dmaIntervalCycles == 0)
        return;
    while (nextDmaAt_ <= now) {
        // Each burst targets the current channel's buffer; channels are
        // spread across rows so they occupy different banks over time.
        const Addr addr = cfg_.dmaBufferBase +
                          static_cast<Addr>(dmaChannel_) *
                              cfg_.dram.rowBytes +
                          (dmaBursts_.value() % 64) * cfg_.lineBytes;
        dram_.access(addr, nextDmaAt_);
        ++dmaBursts_;
        dmaChannel_ = (dmaChannel_ + 1) % cfg_.dmaChannels;
        nextDmaAt_ += cfg_.dmaIntervalCycles;
    }
}

AccessResult
MemorySystem::access(Addr addr, AccessType type, Cycle now)
{
    AccessResult res;
    ++accesses_[idx(type)];

    const bool is_instr = type == AccessType::InstrFetch ||
                          type == AccessType::Prefetch;
    const bool is_write = type == AccessType::DataWrite;
    SetAssocCache &l1 = is_instr ? l1i_ : l1d_;
    const unsigned l1_latency =
        is_instr ? cfg_.l1iLatency : cfg_.l1dLatency;

    // Address translation (SC fills share the D-TLB, Sec. VIII).
    const unsigned tlb_extra = tlbs_.translate(addr, is_instr);
    Cycle t = now + tlb_extra;

    std::optional<Addr> l1_wb;
    if (l1.access(addr, is_write, &l1_wb)) {
        res.l1Hit = true;
        res.completeAt = t + l1_latency;
        return res;
    }
    ++l1Misses_[idx(type)];
    t += l1_latency;

    // An evicted dirty L1 line is absorbed by the L2 (write-back).
    if (l1_wb)
        l2_.access(*l1_wb, true);

    // L2 has a single port; contended requests serialize.
    const Cycle l2_start = std::max(t, l2PortFree_);
    l2PortFree_ = l2_start + 1;

    std::optional<Addr> l2_wb;
    if (l2_.access(addr, is_write, &l2_wb)) {
        res.l2Hit = true;
        res.completeAt = l2_start + cfg_.l2Latency;
        return res;
    }
    ++l2Misses_[idx(type)];

    // Background DMA bursts scheduled before this request reaches the
    // DRAM controller contend for the banks.
    advanceDma(l2_start + cfg_.l2Latency);

    // A dirty L2 victim costs a DRAM burst (bank occupancy only).
    if (l2_wb)
        dram_.access(*l2_wb, l2_start + cfg_.l2Latency);

    res.completeAt = dram_.access(addr, l2_start + cfg_.l2Latency);
    return res;
}

void
MemorySystem::reset()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
    dram_.reset();
    tlbs_.reset();
    l2PortFree_ = 0;
    nextDmaAt_ = 0;
    dmaChannel_ = 0;
    dmaBursts_.reset();
    for (auto &c : accesses_)
        c.reset();
    for (auto &c : l1Misses_)
        c.reset();
    for (auto &c : l2Misses_)
        c.reset();
}

void
MemorySystem::resetStats()
{
    l1i_.resetStats();
    l1d_.resetStats();
    l2_.resetStats();
    dram_.resetStats();
    tlbs_.resetStats();
    dmaBursts_.reset();
    for (auto &c : accesses_)
        c.reset();
    for (auto &c : l1Misses_)
        c.reset();
    for (auto &c : l2Misses_)
        c.reset();
}

void
MemorySystem::addStats(stats::StatGroup &group) const
{
    l1i_.addStats(group);
    l1d_.addStats(group);
    l2_.addStats(group);
    dram_.addStats(group);
    tlbs_.addStats(group);
    group.add("dma.bursts", &dmaBursts_);
    for (unsigned i = 0; i < kNumAccessTypes; ++i) {
        const auto type = static_cast<AccessType>(i);
        group.add(std::string("req.") + accessTypeName(type) + ".count",
                  &accesses_[i]);
        group.add(std::string("req.") + accessTypeName(type) + ".l1_miss",
                  &l1Misses_[i]);
        group.add(std::string("req.") + accessTypeName(type) + ".l2_miss",
                  &l2Misses_[i]);
    }
}

} // namespace rev::mem
