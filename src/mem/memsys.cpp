#include "mem/memsys.hpp"

#include "common/logging.hpp"

namespace rev::mem
{

const char *
accessTypeName(AccessType t)
{
    switch (t) {
      case AccessType::DataRead: return "data_read";
      case AccessType::DataWrite: return "data_write";
      case AccessType::ScFill: return "sc_fill";
      case AccessType::InstrFetch: return "instr_fetch";
      case AccessType::Prefetch: return "prefetch";
    }
    return "?";
}

MemorySystem::Port::Port(const MemConfig &cfg, const std::string &port_prefix)
    : prefix(port_prefix),
      l1i(port_prefix + "l1i", cfg.l1iBytes, cfg.l1iAssoc, cfg.lineBytes),
      l1d(port_prefix + "l1d", cfg.l1dBytes, cfg.l1dAssoc, cfg.lineBytes),
      tlbs(cfg.tlb, port_prefix)
{
}

MemorySystem::MemorySystem(const MemConfig &cfg, unsigned num_cores)
    : cfg_(cfg),
      l2_("l2", cfg.l2Bytes, cfg.l2Assoc, cfg.lineBytes),
      dram_(cfg.dram)
{
    REV_ASSERT(num_cores >= 1, "memsys: need at least one core port");
    ports_.reserve(num_cores);
    for (unsigned c = 0; c < num_cores; ++c)
        ports_.emplace_back(cfg, num_cores == 1
                                     ? std::string()
                                     : "c" + std::to_string(c) + ".");
}

void
MemorySystem::advanceDma(Cycle now)
{
    if (cfg_.dmaIntervalCycles == 0)
        return;
    while (nextDmaAt_ <= now) {
        // Each burst targets the current channel's buffer; channels are
        // spread across rows so they occupy different banks over time.
        const Addr addr = cfg_.dmaBufferBase +
                          static_cast<Addr>(dmaChannel_) *
                              cfg_.dram.rowBytes +
                          (dmaBursts_.value() % 64) * cfg_.lineBytes;
        dram_.access(addr, nextDmaAt_);
        ++dmaBursts_;
        dmaChannel_ = (dmaChannel_ + 1) % cfg_.dmaChannels;
        nextDmaAt_ += cfg_.dmaIntervalCycles;
    }
}

AccessResult
MemorySystem::access(Addr addr, AccessType type, Cycle now, unsigned core)
{
    AccessResult res;
    Port &port = ports_[core];
    ++accesses_[idx(type)];
    ++port.accesses[idx(type)];

    const bool is_instr = type == AccessType::InstrFetch ||
                          type == AccessType::Prefetch;
    const bool is_write = type == AccessType::DataWrite;
    SetAssocCache &l1 = is_instr ? port.l1i : port.l1d;
    const unsigned l1_latency =
        is_instr ? cfg_.l1iLatency : cfg_.l1dLatency;

    // Address translation (SC fills share the D-TLB, Sec. VIII).
    const unsigned tlb_extra = port.tlbs.translate(addr, is_instr);
    Cycle t = now + tlb_extra;

    std::optional<Addr> l1_wb;
    if (l1.access(addr, is_write, &l1_wb)) {
        res.l1Hit = true;
        res.completeAt = t + l1_latency;
        return res;
    }
    ++l1Misses_[idx(type)];
    ++port.l1Misses[idx(type)];
    t += l1_latency;

    // An evicted dirty L1 line is absorbed by the L2 (write-back).
    if (l1_wb)
        l2_.access(*l1_wb, true);

    // L2 has a single port; contended requests serialize. When the port
    // is held by a *different* core's request, the queueing delay is
    // cross-core contention — charge it to this core (and to its SC-fill
    // starvation counter when the victim is a signature-cache fill).
    const Cycle l2_start = std::max(t, l2PortFree_);
    if (l2_start > t && lastL2Core_ != core) {
        port.xcoreL2Wait += l2_start - t;
        if (type == AccessType::ScFill)
            port.xcoreScFillWait += l2_start - t;
    }
    lastL2Core_ = core;
    l2PortFree_ = l2_start + 1;

    std::optional<Addr> l2_wb;
    if (l2_.access(addr, is_write, &l2_wb)) {
        res.l2Hit = true;
        res.completeAt = l2_start + cfg_.l2Latency;
        return res;
    }
    ++l2Misses_[idx(type)];
    ++port.l2Misses[idx(type)];

    // Background DMA bursts scheduled before this request reaches the
    // DRAM controller contend for the banks.
    advanceDma(l2_start + cfg_.l2Latency);

    // A dirty L2 victim costs a DRAM burst (bank occupancy only).
    if (l2_wb)
        dram_.access(*l2_wb, l2_start + cfg_.l2Latency);

    res.completeAt = dram_.access(addr, l2_start + cfg_.l2Latency);
    return res;
}

void
MemorySystem::reset()
{
    for (Port &p : ports_) {
        p.l1i.reset();
        p.l1d.reset();
        p.tlbs.reset();
        for (auto &c : p.accesses)
            c.reset();
        for (auto &c : p.l1Misses)
            c.reset();
        for (auto &c : p.l2Misses)
            c.reset();
        p.xcoreL2Wait.reset();
        p.xcoreScFillWait.reset();
    }
    l2_.reset();
    dram_.reset();
    l2PortFree_ = 0;
    lastL2Core_ = 0;
    nextDmaAt_ = 0;
    dmaChannel_ = 0;
    dmaBursts_.reset();
    for (auto &c : accesses_)
        c.reset();
    for (auto &c : l1Misses_)
        c.reset();
    for (auto &c : l2Misses_)
        c.reset();
}

void
MemorySystem::resetStats()
{
    for (Port &p : ports_) {
        p.l1i.resetStats();
        p.l1d.resetStats();
        p.tlbs.resetStats();
        for (auto &c : p.accesses)
            c.reset();
        for (auto &c : p.l1Misses)
            c.reset();
        for (auto &c : p.l2Misses)
            c.reset();
        p.xcoreL2Wait.reset();
        p.xcoreScFillWait.reset();
    }
    l2_.resetStats();
    dram_.resetStats();
    dmaBursts_.reset();
    for (auto &c : accesses_)
        c.reset();
    for (auto &c : l1Misses_)
        c.reset();
    for (auto &c : l2Misses_)
        c.reset();
}

void
MemorySystem::addStats(stats::StatGroup &group) const
{
    // Single-core: the historical row set, byte for byte — every pinned
    // golden depends on this exact order.
    if (ports_.size() == 1) {
        const Port &p = ports_.front();
        p.l1i.addStats(group);
        p.l1d.addStats(group);
        l2_.addStats(group);
        dram_.addStats(group);
        p.tlbs.addStats(group);
        group.add("dma.bursts", &dmaBursts_);
        for (unsigned i = 0; i < kNumAccessTypes; ++i) {
            const auto type = static_cast<AccessType>(i);
            group.add(std::string("req.") + accessTypeName(type) + ".count",
                      &accesses_[i]);
            group.add(std::string("req.") + accessTypeName(type) + ".l1_miss",
                      &l1Misses_[i]);
            group.add(std::string("req.") + accessTypeName(type) + ".l2_miss",
                      &l2Misses_[i]);
        }
        return;
    }

    // Multicore: shared structures + cross-core aggregates first, then a
    // per-core block per port (private L1s/TLBs, per-class traffic, and
    // the cross-core wait counters the contention story is about).
    l2_.addStats(group);
    dram_.addStats(group);
    group.add("dma.bursts", &dmaBursts_);
    for (unsigned i = 0; i < kNumAccessTypes; ++i) {
        const auto type = static_cast<AccessType>(i);
        group.add(std::string("req.") + accessTypeName(type) + ".count",
                  &accesses_[i]);
        group.add(std::string("req.") + accessTypeName(type) + ".l1_miss",
                  &l1Misses_[i]);
        group.add(std::string("req.") + accessTypeName(type) + ".l2_miss",
                  &l2Misses_[i]);
    }
    for (const Port &p : ports_) {
        p.l1i.addStats(group);
        p.l1d.addStats(group);
        p.tlbs.addStats(group);
        for (unsigned i = 0; i < kNumAccessTypes; ++i) {
            const auto type = static_cast<AccessType>(i);
            group.add(p.prefix + "req." + accessTypeName(type) + ".count",
                      &p.accesses[i]);
            group.add(p.prefix + "req." + accessTypeName(type) + ".l1_miss",
                      &p.l1Misses[i]);
            group.add(p.prefix + "req." + accessTypeName(type) + ".l2_miss",
                      &p.l2Misses[i]);
        }
        group.add(p.prefix + "xcore.l2_wait_cycles", &p.xcoreL2Wait);
        group.add(p.prefix + "xcore.sc_fill_wait_cycles",
                  &p.xcoreScFillWait);
    }
}

} // namespace rev::mem
