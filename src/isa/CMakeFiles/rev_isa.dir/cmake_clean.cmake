file(REMOVE_RECURSE
  "CMakeFiles/rev_isa.dir/codec.cpp.o"
  "CMakeFiles/rev_isa.dir/codec.cpp.o.d"
  "CMakeFiles/rev_isa.dir/disasm.cpp.o"
  "CMakeFiles/rev_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/rev_isa.dir/opcodes.cpp.o"
  "CMakeFiles/rev_isa.dir/opcodes.cpp.o.d"
  "CMakeFiles/rev_isa.dir/reguse.cpp.o"
  "CMakeFiles/rev_isa.dir/reguse.cpp.o.d"
  "librev_isa.a"
  "librev_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
