file(REMOVE_RECURSE
  "librev_isa.a"
)
