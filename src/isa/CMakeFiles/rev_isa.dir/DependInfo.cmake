
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/codec.cpp" "src/isa/CMakeFiles/rev_isa.dir/codec.cpp.o" "gcc" "src/isa/CMakeFiles/rev_isa.dir/codec.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/isa/CMakeFiles/rev_isa.dir/disasm.cpp.o" "gcc" "src/isa/CMakeFiles/rev_isa.dir/disasm.cpp.o.d"
  "/root/repo/src/isa/opcodes.cpp" "src/isa/CMakeFiles/rev_isa.dir/opcodes.cpp.o" "gcc" "src/isa/CMakeFiles/rev_isa.dir/opcodes.cpp.o.d"
  "/root/repo/src/isa/reguse.cpp" "src/isa/CMakeFiles/rev_isa.dir/reguse.cpp.o" "gcc" "src/isa/CMakeFiles/rev_isa.dir/reguse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/rev_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
