# Empty dependencies file for rev_isa.
# This may be replaced when dependencies are built.
