/**
 * @file
 * RVX opcode definitions and per-opcode traits.
 *
 * RVX is the guest ISA of the simulator: a 64-bit register machine with a
 * *variable-length byte encoding* (1..7 bytes per instruction), standing in
 * for x86-64 (see DESIGN.md substitutions). REV hashes raw instruction
 * bytes, so the encoding is the contract the whole validation stack is
 * built on. Calls push their return address on the in-memory stack and RET
 * pops it, which is what makes return-oriented attacks genuinely
 * expressible against the simulated machine.
 */

#ifndef REV_ISA_OPCODES_HPP
#define REV_ISA_OPCODES_HPP

#include <cstdint>

#include "common/types.hpp"

namespace rev::isa
{

/** Number of architectural registers. */
inline constexpr unsigned kNumArchRegs = 32;

/** r0 is hardwired to zero. */
inline constexpr u8 kRegZero = 0;

/** r30 is the stack pointer by convention (used by CALL/RET). */
inline constexpr u8 kRegSp = 30;

/** RVX opcodes. Values are the first encoded byte and must stay stable. */
enum class Opcode : u8
{
    // 1-byte encodings
    Nop = 0x03, // note: 0x00 is deliberately NOT a valid opcode, so that
                // zero-filled memory never decodes as an instruction sled
    Halt = 0x01,
    Ret = 0x02,

    // 2-byte encodings: op, reg
    CallR = 0x08, ///< indirect call through register
    JmpR = 0x09,  ///< computed jump through register
    Syscall = 0x0a, ///< op, imm8 service number

    // 4-byte R3 encodings: op, rd, rs1, rs2
    Add = 0x10,
    Sub = 0x11,
    Mul = 0x12,
    Divu = 0x13,
    And = 0x14,
    Or = 0x15,
    Xor = 0x16,
    Shl = 0x17,
    Shr = 0x18,
    Slt = 0x19,  ///< rd = (i64)rs1 < (i64)rs2
    Sltu = 0x1a,
    Fadd = 0x1b, ///< operates on registers holding double bit patterns
    Fsub = 0x1c,
    Fmul = 0x1d,
    Fdiv = 0x1e,

    // 5-byte encodings: op, imm32 (PC-relative)
    Jmp = 0x20,
    Call = 0x21,

    // 6-byte encodings: op, rd, imm32
    Movi = 0x28, ///< rd = sign-extended imm32
    Lui = 0x29,  ///< rd = imm32 << 32

    // 7-byte RI encodings: op, rd, rs1, imm32
    Addi = 0x30,
    Andi = 0x31,
    Ori = 0x32,
    Xori = 0x33,
    Shli = 0x34,
    Shri = 0x35,
    Slti = 0x36,
    Muli = 0x37,

    // 7-byte MEM encodings: op, r, base, imm32
    Ld = 0x40,  ///< r = mem64[base + imm]
    St = 0x41,  ///< mem64[base + imm] = r
    Lb = 0x42,  ///< r = zext(mem8[base + imm])
    Sb = 0x43,  ///< mem8[base + imm] = r & 0xff
    Lw = 0x44,  ///< r = zext(mem32[base + imm])
    Sw = 0x45,  ///< mem32[base + imm] = r & 0xffffffff

    // 7-byte branch encodings: op, rs1, rs2, imm32 (target = pc + imm)
    Beq = 0x50,
    Bne = 0x51,
    Blt = 0x52,
    Bge = 0x53,
    Bltu = 0x54,
};

/** Broad classes used by the pipeline's functional-unit scheduling. */
enum class InstrClass : u8
{
    Nop,
    IntAlu,
    IntMul,
    IntDiv,
    FpAlu,
    FpMul,
    FpDiv,
    Load,
    Store,
    Branch,       ///< conditional PC-relative branch
    Jump,         ///< direct unconditional jump
    Call,         ///< direct call (pushes return address: store-like)
    CallIndirect, ///< computed call (store-like)
    JumpIndirect, ///< computed jump
    Return,       ///< pops return address (load-like)
    Syscall,
    Halt,
};

/** Encoded length in bytes of an instruction with opcode @p op; 0 = bad. */
unsigned opcodeLength(Opcode op);

/** True iff @p raw is a defined opcode byte. */
bool opcodeValid(u8 raw);

/** Instruction class for scheduling/CFG purposes. */
InstrClass opcodeClass(Opcode op);

/** Mnemonic string for disassembly. */
const char *opcodeName(Opcode op);

/** Access width in bytes of a memory opcode (0 for non-memory). */
unsigned opcodeMemBytes(Opcode op);

/** True iff the class ends a basic block (any control transfer). */
inline bool
classIsControlFlow(InstrClass c)
{
    switch (c) {
      case InstrClass::Branch:
      case InstrClass::Jump:
      case InstrClass::Call:
      case InstrClass::CallIndirect:
      case InstrClass::JumpIndirect:
      case InstrClass::Return:
      case InstrClass::Halt:
        return true;
      default:
        return false;
    }
}

/** True iff the class is a computed (indirect) control transfer. */
inline bool
classIsComputed(InstrClass c)
{
    return c == InstrClass::CallIndirect || c == InstrClass::JumpIndirect;
}

} // namespace rev::isa

#endif // REV_ISA_OPCODES_HPP
