#include "isa/opcodes.hpp"

namespace rev::isa
{

unsigned
opcodeLength(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Ret:
        return 1;
      case Opcode::CallR:
      case Opcode::JmpR:
      case Opcode::Syscall:
        return 2;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Divu:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Slt:
      case Opcode::Sltu:
      case Opcode::Fadd:
      case Opcode::Fsub:
      case Opcode::Fmul:
      case Opcode::Fdiv:
        return 4;
      case Opcode::Jmp:
      case Opcode::Call:
        return 5;
      case Opcode::Movi:
      case Opcode::Lui:
        return 6;
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Shli:
      case Opcode::Shri:
      case Opcode::Slti:
      case Opcode::Muli:
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::Lb:
      case Opcode::Sb:
      case Opcode::Lw:
      case Opcode::Sw:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
        return 7;
    }
    return 0;
}

unsigned
opcodeMemBytes(Opcode op)
{
    switch (op) {
      case Opcode::Lb:
      case Opcode::Sb:
        return 1;
      case Opcode::Lw:
      case Opcode::Sw:
        return 4;
      case Opcode::Ld:
      case Opcode::St:
        return 8;
      default:
        return 0;
    }
}

bool
opcodeValid(u8 raw)
{
    return opcodeLength(static_cast<Opcode>(raw)) != 0;
}

InstrClass
opcodeClass(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
        return InstrClass::Nop;
      case Opcode::Halt:
        return InstrClass::Halt;
      case Opcode::Ret:
        return InstrClass::Return;
      case Opcode::CallR:
        return InstrClass::CallIndirect;
      case Opcode::JmpR:
        return InstrClass::JumpIndirect;
      case Opcode::Syscall:
        return InstrClass::Syscall;
      case Opcode::Mul:
      case Opcode::Muli:
        return InstrClass::IntMul;
      case Opcode::Divu:
        return InstrClass::IntDiv;
      case Opcode::Fadd:
      case Opcode::Fsub:
        return InstrClass::FpAlu;
      case Opcode::Fmul:
        return InstrClass::FpMul;
      case Opcode::Fdiv:
        return InstrClass::FpDiv;
      case Opcode::Jmp:
        return InstrClass::Jump;
      case Opcode::Call:
        return InstrClass::Call;
      case Opcode::Ld:
      case Opcode::Lb:
      case Opcode::Lw:
        return InstrClass::Load;
      case Opcode::St:
      case Opcode::Sb:
      case Opcode::Sw:
        return InstrClass::Store;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
        return InstrClass::Branch;
      default:
        return InstrClass::IntAlu;
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      case Opcode::Ret: return "ret";
      case Opcode::CallR: return "callr";
      case Opcode::JmpR: return "jmpr";
      case Opcode::Syscall: return "syscall";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Divu: return "divu";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Slt: return "slt";
      case Opcode::Sltu: return "sltu";
      case Opcode::Fadd: return "fadd";
      case Opcode::Fsub: return "fsub";
      case Opcode::Fmul: return "fmul";
      case Opcode::Fdiv: return "fdiv";
      case Opcode::Jmp: return "jmp";
      case Opcode::Call: return "call";
      case Opcode::Movi: return "movi";
      case Opcode::Lui: return "lui";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Shli: return "shli";
      case Opcode::Shri: return "shri";
      case Opcode::Slti: return "slti";
      case Opcode::Muli: return "muli";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Lb: return "lb";
      case Opcode::Sb: return "sb";
      case Opcode::Lw: return "lw";
      case Opcode::Sw: return "sw";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Bltu: return "bltu";
    }
    return "???";
}

} // namespace rev::isa
