/**
 * @file
 * Decoded RVX instruction representation.
 */

#ifndef REV_ISA_INSTR_HPP
#define REV_ISA_INSTR_HPP

#include "common/types.hpp"
#include "isa/opcodes.hpp"

namespace rev::isa
{

/**
 * A decoded RVX instruction. Field use depends on format:
 *  - R3:  rd, rs1, rs2
 *  - RI:  rd, rs1, imm
 *  - MEM: rd (data reg), rs1 (base), imm (offset)
 *  - BR:  rs1, rs2, imm (pc-relative target offset)
 *  - JMP/CALL: imm (pc-relative target offset)
 *  - CALLR/JMPR: rs1 (target register)
 *  - MOVI/LUI: rd, imm
 *  - SYSCALL: imm (service number, 0..255)
 */
struct Instr
{
    Opcode op = Opcode::Nop;
    u8 rd = 0;
    u8 rs1 = 0;
    u8 rs2 = 0;
    i32 imm = 0;

    /** Encoded length in bytes. */
    unsigned length() const { return opcodeLength(op); }

    InstrClass klass() const { return opcodeClass(op); }

    bool isControlFlow() const { return classIsControlFlow(klass()); }
    bool isComputed() const { return classIsComputed(klass()); }
    bool isBranch() const { return klass() == InstrClass::Branch; }
    bool isReturn() const { return klass() == InstrClass::Return; }

    bool
    isCall() const
    {
        const auto c = klass();
        return c == InstrClass::Call || c == InstrClass::CallIndirect;
    }

    /** True iff the instruction reads memory (LD, RET pop). */
    bool
    readsMem() const
    {
        const auto c = klass();
        return c == InstrClass::Load || c == InstrClass::Return;
    }

    /** True iff the instruction writes memory (ST, CALL push). */
    bool
    writesMem() const
    {
        const auto c = klass();
        return c == InstrClass::Store || c == InstrClass::Call ||
               c == InstrClass::CallIndirect;
    }

    /** Direct branch/jump/call target given the instruction's address. */
    Addr
    directTarget(Addr pc) const
    {
        return pc + static_cast<i64>(imm);
    }

    /** Fall-through address (address of the next sequential instruction). */
    Addr fallThrough(Addr pc) const { return pc + length(); }

    bool operator==(const Instr &) const = default;
};

} // namespace rev::isa

#endif // REV_ISA_INSTR_HPP
