#include "isa/codec.hpp"

#include "common/logging.hpp"

namespace rev::isa
{

namespace
{

void
putImm32(std::vector<u8> &out, i32 imm)
{
    const u32 v = static_cast<u32>(imm);
    out.push_back(static_cast<u8>(v));
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v >> 16));
    out.push_back(static_cast<u8>(v >> 24));
}

i32
getImm32(const u8 *p)
{
    const u32 v = static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
                  (static_cast<u32>(p[2]) << 16) |
                  (static_cast<u32>(p[3]) << 24);
    return static_cast<i32>(v);
}

/** Encoding formats keyed by length and opcode group. */
enum class Format
{
    Op,      // 1B: op
    OpReg,   // 2B: op, rs1
    OpImm8,  // 2B: op, imm8
    R3,      // 4B: op, rd, rs1, rs2
    OpImm32, // 5B: op, imm32
    RdImm32, // 6B: op, rd, imm32
    RI,      // 7B: op, rd, rs1, imm32
    Mem,     // 7B: op, rd, rs1(base), imm32
    Br,      // 7B: op, rs1, rs2, imm32
};

Format
formatOf(Opcode op)
{
    switch (opcodeClass(op)) {
      case InstrClass::Nop:
      case InstrClass::Halt:
      case InstrClass::Return:
        return Format::Op;
      case InstrClass::CallIndirect:
      case InstrClass::JumpIndirect:
        return Format::OpReg;
      case InstrClass::Syscall:
        return Format::OpImm8;
      case InstrClass::Jump:
      case InstrClass::Call:
        return Format::OpImm32;
      case InstrClass::Load:
      case InstrClass::Store:
        return Format::Mem;
      case InstrClass::Branch:
        return Format::Br;
      default:
        break;
    }
    // Remaining ALU-ish opcodes split by encoded length.
    switch (opcodeLength(op)) {
      case 4:
        return Format::R3;
      case 6:
        return Format::RdImm32;
      case 7:
        return Format::RI;
      default:
        panic("formatOf: unclassified opcode ", static_cast<int>(op));
    }
}

} // namespace

unsigned
encode(const Instr &ins, std::vector<u8> &out)
{
    const std::size_t start = out.size();
    out.push_back(static_cast<u8>(ins.op));
    switch (formatOf(ins.op)) {
      case Format::Op:
        break;
      case Format::OpReg:
        out.push_back(ins.rs1);
        break;
      case Format::OpImm8:
        out.push_back(static_cast<u8>(ins.imm));
        break;
      case Format::R3:
        out.push_back(ins.rd);
        out.push_back(ins.rs1);
        out.push_back(ins.rs2);
        break;
      case Format::OpImm32:
        putImm32(out, ins.imm);
        break;
      case Format::RdImm32:
        out.push_back(ins.rd);
        putImm32(out, ins.imm);
        break;
      case Format::RI:
      case Format::Mem:
        out.push_back(ins.rd);
        out.push_back(ins.rs1);
        putImm32(out, ins.imm);
        break;
      case Format::Br:
        out.push_back(ins.rs1);
        out.push_back(ins.rs2);
        putImm32(out, ins.imm);
        break;
    }
    const unsigned len = static_cast<unsigned>(out.size() - start);
    REV_ASSERT(len == ins.length(), "encode length mismatch for ",
               opcodeName(ins.op));
    return len;
}

std::optional<Instr>
decode(const u8 *bytes, std::size_t avail)
{
    if (avail == 0 || !opcodeValid(bytes[0]))
        return std::nullopt;

    Instr ins;
    ins.op = static_cast<Opcode>(bytes[0]);
    const unsigned len = ins.length();
    if (avail < len)
        return std::nullopt;

    switch (formatOf(ins.op)) {
      case Format::Op:
        break;
      case Format::OpReg:
        ins.rs1 = bytes[1];
        break;
      case Format::OpImm8:
        ins.imm = bytes[1];
        break;
      case Format::R3:
        ins.rd = bytes[1];
        ins.rs1 = bytes[2];
        ins.rs2 = bytes[3];
        break;
      case Format::OpImm32:
        ins.imm = getImm32(bytes + 1);
        break;
      case Format::RdImm32:
        ins.rd = bytes[1];
        ins.imm = getImm32(bytes + 2);
        break;
      case Format::RI:
      case Format::Mem:
        ins.rd = bytes[1];
        ins.rs1 = bytes[2];
        ins.imm = getImm32(bytes + 3);
        break;
      case Format::Br:
        ins.rs1 = bytes[1];
        ins.rs2 = bytes[2];
        ins.imm = getImm32(bytes + 3);
        break;
    }

    // Register fields must name architectural registers.
    if (ins.rd >= kNumArchRegs || ins.rs1 >= kNumArchRegs ||
        ins.rs2 >= kNumArchRegs) {
        return std::nullopt;
    }
    return ins;
}

} // namespace rev::isa
