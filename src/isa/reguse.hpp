/**
 * @file
 * Source/destination register usage of a decoded instruction.
 *
 * Derived purely from the instruction encoding, so it can be computed once
 * per static instruction and cached alongside the decode (the interpreter's
 * predecoded-instruction cache does exactly that); the out-of-order core's
 * dependence tracking consumes it on every dynamic execution.
 */

#ifndef REV_ISA_REGUSE_HPP
#define REV_ISA_REGUSE_HPP

#include "isa/instr.hpp"

namespace rev::isa
{

/** Register operands of one instruction (zero register filtered out). */
struct RegUse
{
    u8 srcs[3] = {0, 0, 0};
    u8 nsrc = 0;
    i8 dst = -1; ///< destination register, -1 when none (or r0)
};

/** Compute the register usage of @p ins. */
RegUse regUse(const Instr &ins);

} // namespace rev::isa

#endif // REV_ISA_REGUSE_HPP
