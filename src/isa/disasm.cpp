#include "isa/disasm.hpp"

#include <sstream>

namespace rev::isa
{

std::string
disassemble(const Instr &ins, Addr pc)
{
    std::ostringstream os;
    os << opcodeName(ins.op);
    const auto c = ins.klass();
    auto reg = [](u8 r) { return "r" + std::to_string(r); };
    auto hex = [](Addr a) {
        std::ostringstream h;
        h << "0x" << std::hex << a;
        return h.str();
    };

    switch (c) {
      case InstrClass::Nop:
      case InstrClass::Halt:
      case InstrClass::Return:
        break;
      case InstrClass::CallIndirect:
      case InstrClass::JumpIndirect:
        os << ' ' << reg(ins.rs1);
        break;
      case InstrClass::Syscall:
        os << ' ' << ins.imm;
        break;
      case InstrClass::Jump:
      case InstrClass::Call:
        os << ' ' << hex(ins.directTarget(pc));
        break;
      case InstrClass::Load:
        os << ' ' << reg(ins.rd) << ", [" << reg(ins.rs1) << (ins.imm >= 0 ? "+" : "")
           << ins.imm << ']';
        break;
      case InstrClass::Store:
        os << " [" << reg(ins.rs1) << (ins.imm >= 0 ? "+" : "") << ins.imm
           << "], " << reg(ins.rd);
        break;
      case InstrClass::Branch:
        os << ' ' << reg(ins.rs1) << ", " << reg(ins.rs2) << ", "
           << hex(ins.directTarget(pc));
        break;
      default:
        // ALU forms
        switch (ins.length()) {
          case 4:
            os << ' ' << reg(ins.rd) << ", " << reg(ins.rs1) << ", "
               << reg(ins.rs2);
            break;
          case 6:
            os << ' ' << reg(ins.rd) << ", " << ins.imm;
            break;
          case 7:
            os << ' ' << reg(ins.rd) << ", " << reg(ins.rs1) << ", "
               << ins.imm;
            break;
          default:
            break;
        }
    }
    return os.str();
}

} // namespace rev::isa
