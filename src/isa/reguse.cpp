#include "isa/reguse.hpp"

namespace rev::isa
{

RegUse
regUse(const Instr &ins)
{
    RegUse u;
    auto src = [&](u8 r) {
        if (r != kRegZero)
            u.srcs[u.nsrc++] = r;
    };
    switch (ins.klass()) {
      case InstrClass::Nop:
      case InstrClass::Halt:
      case InstrClass::Syscall:
      case InstrClass::Jump:
        break;
      case InstrClass::Call:
        src(kRegSp);
        u.dst = kRegSp;
        break;
      case InstrClass::CallIndirect:
        src(ins.rs1);
        src(kRegSp);
        u.dst = kRegSp;
        break;
      case InstrClass::JumpIndirect:
        src(ins.rs1);
        break;
      case InstrClass::Return:
        src(kRegSp);
        u.dst = kRegSp;
        break;
      case InstrClass::Load:
        src(ins.rs1);
        u.dst = static_cast<i8>(ins.rd);
        break;
      case InstrClass::Store:
        src(ins.rs1);
        src(ins.rd); // store data
        break;
      case InstrClass::Branch:
        src(ins.rs1);
        src(ins.rs2);
        break;
      default:
        // ALU forms: R3 reads rs1/rs2; RI reads rs1; MOVI/LUI read none.
        switch (ins.length()) {
          case 4:
            src(ins.rs1);
            src(ins.rs2);
            break;
          case 7:
            src(ins.rs1);
            break;
          default:
            break;
        }
        u.dst = static_cast<i8>(ins.rd);
        break;
    }
    if (u.dst == kRegZero)
        u.dst = -1;
    return u;
}

} // namespace rev::isa
