/**
 * @file
 * Byte-exact RVX encoder / decoder.
 */

#ifndef REV_ISA_CODEC_HPP
#define REV_ISA_CODEC_HPP

#include <cstddef>
#include <optional>
#include <vector>

#include "isa/instr.hpp"

namespace rev::isa
{

/** Append the encoding of @p ins to @p out; returns encoded length. */
unsigned encode(const Instr &ins, std::vector<u8> &out);

/**
 * Decode one instruction from @p bytes (with @p avail bytes available).
 * Returns std::nullopt on an undefined opcode byte or a truncated
 * encoding.
 */
std::optional<Instr> decode(const u8 *bytes, std::size_t avail);

} // namespace rev::isa

#endif // REV_ISA_CODEC_HPP
