/**
 * @file
 * RVX disassembler (debugging / example output).
 */

#ifndef REV_ISA_DISASM_HPP
#define REV_ISA_DISASM_HPP

#include <string>

#include "isa/instr.hpp"

namespace rev::isa
{

/** Render @p ins at address @p pc as e.g. "beq r1, r2, 0x1040". */
std::string disassemble(const Instr &ins, Addr pc);

} // namespace rev::isa

#endif // REV_ISA_DISASM_HPP
