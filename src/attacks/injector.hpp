/**
 * @file
 * Reusable tamper-injection primitives.
 *
 * The hand-written Table 1 attacks and the machine-generated redteam
 * campaigns (src/redteam) perform the same few physical operations —
 * overwrite code bytes behind REV's back, smash the return-address slot,
 * fire a one-shot hook at a precise point of the committed stream. This
 * header centralizes them so both frameworks tamper through identical
 * code paths and a detection result from one carries over to the other.
 *
 * All primitives install or compose Core::PreStepHook logic; a Simulator
 * accepts one hook, so each attack arms exactly one primitive (or builds
 * a custom hook out of the write helpers).
 */

#ifndef REV_ATTACKS_INJECTOR_HPP
#define REV_ATTACKS_INJECTOR_HPP

#include <functional>
#include <vector>

#include "core/simulator.hpp"

namespace rev::attacks::inject
{

/** Tamper action run at the firing point. */
using Action = std::function<void(core::Simulator &sim)>;

/**
 * Overwrite @p len bytes at @p addr as an external agent (another
 * process, rogue DMA) would: the functional memory changes and REV's
 * hash memo is dropped, but no pipeline event is generated.
 */
void tamperCode(core::Simulator &sim, Addr addr, const u8 *data,
                std::size_t len);

inline void
tamperCode(core::Simulator &sim, Addr addr, const std::vector<u8> &data)
{
    tamperCode(sim, addr, data.data(), data.size());
}

/**
 * Overwrite the return-address slot the next RET will pop ([sp]) with
 * @p target. Call from a hook firing while the next instruction is a
 * Return. If [sp] already equals @p target the slot is redirected to
 * @p target + 1 so the smash is never a silent no-op.
 */
void smashReturnAddress(core::Simulator &sim, Addr target);

/** True if the next instruction to execute at @p pc decodes as a RET. */
bool returnAt(core::Simulator &sim, Addr pc);

/**
 * Fire @p fn once, the first time the next PC equals @p pc at committed-
 * instruction index >= @p min_index. @p fired must outlive the run.
 */
void onceAtPc(core::Simulator &sim, Addr pc, u64 min_index, Action fn,
              bool &fired);

/** Fire @p fn once at committed-instruction index >= @p index. */
void onceAtIndex(core::Simulator &sim, u64 index, Action fn, bool &fired);

/**
 * Fire @p fn once, immediately before the first Return instruction at
 * committed-instruction index >= @p min_index ([sp] then holds the
 * return address about to be popped).
 */
void onceAtReturn(core::Simulator &sim, u64 min_index, Action fn,
                  bool &fired);

} // namespace rev::attacks::inject

#endif // REV_ATTACKS_INJECTOR_HPP
