# Empty dependencies file for rev_attacks.
# This may be replaced when dependencies are built.
