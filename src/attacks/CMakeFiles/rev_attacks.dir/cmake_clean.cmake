file(REMOVE_RECURSE
  "CMakeFiles/rev_attacks.dir/attacks.cpp.o"
  "CMakeFiles/rev_attacks.dir/attacks.cpp.o.d"
  "CMakeFiles/rev_attacks.dir/injector.cpp.o"
  "CMakeFiles/rev_attacks.dir/injector.cpp.o.d"
  "librev_attacks.a"
  "librev_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
