file(REMOVE_RECURSE
  "librev_attacks.a"
)
