/**
 * @file
 * Run-time attack injection framework (Table 1 of the paper).
 *
 * Each attack builds a small victim program and arms a tampering hook that
 * fires while the victim executes on the simulated machine — overwriting
 * code bytes, smashing stack return addresses, or corrupting function-
 * pointer tables, exactly the classes in Table 1. The framework then
 * reports whether REV detected the compromise and via which mechanism.
 */

#ifndef REV_ATTACKS_ATTACK_HPP
#define REV_ATTACKS_ATTACK_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "validate/coverage.hpp"

namespace rev::attacks
{

/**
 * Tampering taxonomy (Sec. V.D / Table 1). Every concrete attack — and
 * every machine-generated injection in src/redteam — belongs to one of
 * these classes, and per-(backend, mode) detectability is a property of
 * the class, not of the individual attack binary. The taxonomy and the
 * per-backend claimed-coverage matrix live in validate/coverage.hpp.
 */
using validate::TamperClass;
using validate::tamperClassName;

/**
 * Whether tampering of class @p c is detectable by the REV backend under
 * @p mode (the historical single-backend question; the general form is
 * validate::backendClaims).
 */
inline bool
tamperDetectableIn(TamperClass c, sig::ValidationMode mode)
{
    return validate::backendClaims(validate::Backend::Rev, c, mode);
}

/** Result of one attack run. */
struct AttackOutcome
{
    bool triggered = false; ///< the tampering hook actually fired
    bool detected = false;  ///< REV raised a validation exception
    std::string reason;     ///< violation reason (empty if undetected)
    cpu::RunResult run;

    /** True if the attack achieved its goal (tainted state / ran code). */
    bool succeeded = false;
};

/**
 * Base class of all injected attacks.
 */
class Attack
{
  public:
    virtual ~Attack() = default;

    /** Table 1 row name, e.g. "return-oriented". */
    virtual const char *name() const = 0;

    /** Table 1 "How REV detects" summary. */
    virtual const char *table1Mechanism() const = 0;

    /** Taxonomy class of this attack's tampering. */
    virtual TamperClass tamperClass() const = 0;

    /**
     * Whether this attack is detectable by @p backend in @p mode.
     * Derived from the taxonomy's claimed-coverage matrix — per-attack
     * overrides are deliberately impossible, so expectations in the
     * table/bench binaries always match the class.
     */
    bool
    detectableIn(sig::ValidationMode mode,
                 validate::Backend backend = validate::Backend::Rev) const
    {
        return validate::backendClaims(backend, tamperClass(), mode);
    }

    /** Build the victim, arm the tamper hook, run, and report. */
    AttackOutcome execute(const core::SimConfig &cfg);

  protected:
    /** Build the victim program (called once per execute()). */
    virtual prog::Program buildVictim() = 0;

    /** Install the tampering hook on the simulator. */
    virtual void arm(core::Simulator &sim) = 0;

    /** Judge post-run whether the attack's goal was achieved. */
    virtual bool goalAchieved(core::Simulator &sim) = 0;

    prog::Program victim_;
    bool triggered_ = false;
};

/** All Table 1 attacks, in paper order. */
std::vector<std::unique_ptr<Attack>> makeAllAttacks();

} // namespace rev::attacks

#endif // REV_ATTACKS_ATTACK_HPP
