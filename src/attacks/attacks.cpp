/**
 * @file
 * The Table 1 attack classes (plus the intro's illegal-dynamic-linking).
 *
 * Every victim follows the same convention: the attacker's goal is to get
 * the value 666 written to the "secret" heap address. A successful attack
 * (on an unprotected machine) leaves 666 in memory; under REV the
 * offending basic block fails authentication and its stores never reach
 * memory (Requirement R5), so the secret stays 0.
 */

#include "attacks/attack.hpp"

#include "attacks/injector.hpp"
#include "isa/codec.hpp"
#include "program/assembler.hpp"

namespace rev::attacks
{

using isa::Opcode;
using prog::Assembler;
using prog::Program;
using sig::ValidationMode;

/** The memory location the attacker tries to taint. */
inline constexpr Addr kSecretAddr = prog::kHeapBase + 0x800;

AttackOutcome
Attack::execute(const core::SimConfig &cfg)
{
    triggered_ = false;
    victim_ = buildVictim();
    core::Simulator sim(victim_, cfg);
    arm(sim);

    AttackOutcome out;
    const core::SimResult r = sim.run();
    out.run = r.run;
    out.triggered = triggered_;
    // Only REV raises authentication exceptions. An unprotected machine
    // may still crash *after* the payload ran (e.g., a gadget's final RET
    // popping garbage) -- that is not detection.
    out.detected = cfg.withRev && r.run.violation.has_value();
    if (out.detected)
        out.reason = r.run.violation->reason;
    out.succeeded = goalAchieved(sim);
    return out;
}

namespace
{

/** Encode a short "write 666 to [r5]" payload ending in @p tail. */
std::vector<u8>
shellcode(Opcode tail)
{
    std::vector<u8> bytes;
    isa::encode({.op = Opcode::Movi, .rd = 2, .imm = 666}, bytes);
    isa::encode({.op = Opcode::St, .rd = 2, .rs1 = 5, .imm = 0}, bytes);
    isa::encode({.op = tail}, bytes);
    return bytes;
}

// ---------------------------------------------------------------------------
// 1. Direct code injection: a higher-privilege process overwrites the
//    victim's binary on the fly.
// ---------------------------------------------------------------------------

class DirectCodeInjection : public Attack
{
  public:
    const char *name() const override { return "direct-code-injection"; }

    const char *
    table1Mechanism() const override
    {
        return "basic block crypto hash will not match reference hash";
    }

    TamperClass
    tamperClass() const override
    {
        // The injected code keeps the control-flow shape; the class is
        // blind under CFI-only validation (no hashes, Sec. V.D).
        return TamperClass::CodeSubstitution;
    }

  protected:
    Program
    buildVictim() override
    {
        Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        a.movi(5, static_cast<i32>(kSecretAddr));
        a.movi(1, 0);
        a.movi(3, 4); // call update 4 times
        a.label("loop");
        a.call("update");
        a.addi(3, 3, -1);
        a.bne(3, 0, "loop");
        a.halt();

        a.label("update");
        a.addi(1, 1, 10);
        a.addi(1, 1, 10);
        a.addi(1, 1, 10);
        a.ret();

        Program p;
        p.addModule(a.finalize("victim", "main"));
        return p;
    }

    void
    arm(core::Simulator &sim) override
    {
        const Addr target = victim_.main().symbol("update");
        const Addr loop = victim_.main().symbol("loop");
        // Strike from "another process" while the victim is between
        // calls (never mid-way through the function being rewritten).
        inject::onceAtPc(
            sim, loop, /*min_index=*/9,
            [target](core::Simulator &s) {
                // Overwrite the update() body with the payload (padded
                // with NOPs to preserve the RET alignment).
                std::vector<u8> code = shellcode(Opcode::Nop);
                while (code.size() < 21)
                    code.push_back(static_cast<u8>(Opcode::Nop));
                inject::tamperCode(s, target, code);
            },
            triggered_);
    }

    bool
    goalAchieved(core::Simulator &sim) override
    {
        return sim.memory().read64(kSecretAddr) == 666;
    }
};

// ---------------------------------------------------------------------------
// 2. Indirect code injection: a buffer overflow writes shellcode onto the
//    stack and redirects the return into it.
// ---------------------------------------------------------------------------

class IndirectCodeInjection : public Attack
{
  public:
    const char *name() const override { return "indirect-code-injection"; }

    const char *
    table1Mechanism() const override
    {
        return "hash mismatch; control-flow path not in static analysis";
    }

    TamperClass
    tamperClass() const override
    {
        // The stack shellcode has no reference signatures at all.
        return TamperClass::ForeignCode;
    }

  protected:
    Program
    buildVictim() override
    {
        Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        a.movi(5, static_cast<i32>(kSecretAddr));
        a.call("reader"); // "reads input" into a stack buffer
        a.halt();

        a.label("reader");
        a.addi(isa::kRegSp, isa::kRegSp, -64); // local buffer
        a.addi(1, 1, 1);
        a.addi(isa::kRegSp, isa::kRegSp, 64);
        retPc_ = a.ret();

        Program p;
        p.addModule(a.finalize("victim", "main"));
        return p;
    }

    void
    arm(core::Simulator &sim) override
    {
        inject::onceAtPc(
            sim, retPc_, /*min_index=*/0,
            [](core::Simulator &s) {
                const Addr sp = s.core().machine().reg(isa::kRegSp);
                const Addr shell = sp - 128; // in the overflowed buffer
                inject::tamperCode(s, shell, shellcode(Opcode::Halt));
                inject::smashReturnAddress(s, shell);
            },
            triggered_);
    }

    bool
    goalAchieved(core::Simulator &sim) override
    {
        return sim.memory().read64(kSecretAddr) == 666;
    }

  private:
    Addr retPc_ = 0;
};

// ---------------------------------------------------------------------------
// 3. Return-oriented programming: return into an unintended code chunk
//    (the tail of a privileged function).
// ---------------------------------------------------------------------------

class ReturnOriented : public Attack
{
  public:
    const char *name() const override { return "return-oriented"; }

    const char *
    table1Mechanism() const override
    {
        return "control-flow path will not match statically known path";
    }

    TamperClass
    tamperClass() const override
    {
        return TamperClass::ControlFlowHijack;
    }

  protected:
    Program
    buildVictim() override
    {
        Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        a.movi(5, static_cast<i32>(kSecretAddr));
        a.call("worker");
        a.halt();

        a.label("worker");
        a.addi(1, 1, 1);
        retPc_ = a.ret();

        // A privileged function whose tail is the gadget.
        a.label("priv");
        a.addi(9, 9, 1);
        gadget_ = a.movi(2, 666); // gadget entry: mid-function, no leader
        a.st(2, 5, 0);
        a.ret();

        Program p;
        p.addModule(a.finalize("victim", "main"));
        return p;
    }

    void
    arm(core::Simulator &sim) override
    {
        inject::onceAtPc(
            sim, retPc_, /*min_index=*/0,
            [this](core::Simulator &s) {
                inject::smashReturnAddress(s, gadget_);
            },
            triggered_);
    }

    bool
    goalAchieved(core::Simulator &sim) override
    {
        return sim.memory().read64(kSecretAddr) == 666;
    }

  private:
    Addr retPc_ = 0;
    Addr gadget_ = 0;
};

// ---------------------------------------------------------------------------
// 4. Jump-oriented programming: corrupt the dispatcher table feeding a
//    computed jump.
// ---------------------------------------------------------------------------

class JumpOriented : public Attack
{
  public:
    const char *name() const override { return "jump-oriented"; }

    const char *
    table1Mechanism() const override
    {
        return "gadget hash / control-flow path will not match reference";
    }

    TamperClass
    tamperClass() const override
    {
        return TamperClass::ControlFlowHijack;
    }

  protected:
    Program
    buildVictim() override
    {
        Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        a.movi(5, static_cast<i32>(kSecretAddr));
        a.la(4, "table");
        a.ld(6, 4, 0); // dispatcher target
        const Addr site = a.jmpr(6);
        a.annotateIndirect(site, {"handler"});
        a.label("handler");
        a.addi(1, 1, 1);
        a.halt();

        a.label("gadget");
        a.movi(2, 666);
        a.st(2, 5, 0);
        a.halt();

        a.beginData();
        a.align(8);
        a.label("table");
        a.word64Label("handler");

        Program p;
        p.addModule(a.finalize("victim", "main"));
        tableAddr_ = p.main().symbol("table");
        gadget_ = p.main().symbol("gadget");
        return p;
    }

    void
    arm(core::Simulator &sim) override
    {
        // Corrupt the dispatcher table before main loads from it.
        sim.memory().write64(tableAddr_, gadget_);
        triggered_ = true;
    }

    bool
    goalAchieved(core::Simulator &sim) override
    {
        return sim.memory().read64(kSecretAddr) == 666;
    }

  private:
    Addr tableAddr_ = 0;
    Addr gadget_ = 0;
};

// ---------------------------------------------------------------------------
// 5. VTable compromise: overwrite a function pointer used by an indirect
//    call in an object-oriented dispatch.
// ---------------------------------------------------------------------------

class VtableCompromise : public Attack
{
  public:
    const char *name() const override { return "vtable-compromise"; }

    const char *
    table1Mechanism() const override
    {
        return "control-flow path will not match statically known path";
    }

    TamperClass
    tamperClass() const override
    {
        return TamperClass::ControlFlowHijack;
    }

  protected:
    Program
    buildVictim() override
    {
        Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        a.movi(5, static_cast<i32>(kSecretAddr));
        // Object's vtable lives on the heap; constructor fills it.
        a.movi(7, static_cast<i32>(prog::kHeapBase));
        a.la(8, "method_a");
        a.st(8, 7, 0); // vtable[0] = method_a
        a.jmp("dispatch"); // constructor's block ends; vtable visible
        a.label("dispatch");
        // Virtual dispatch.
        a.ld(6, 7, 0);
        const Addr site = a.callr(6);
        a.annotateIndirect(site, {"method_a", "method_b"});
        a.halt();

        a.label("method_a");
        a.addi(1, 1, 1);
        a.ret();
        a.label("method_b");
        a.addi(1, 1, 2);
        a.ret();

        a.label("evil");
        a.movi(2, 666);
        a.st(2, 5, 0);
        a.ret();

        Program p;
        p.addModule(a.finalize("victim", "main"));
        dispatchPc_ = site;
        evil_ = p.main().symbol("evil");
        return p;
    }

    void
    arm(core::Simulator &sim) override
    {
        // Overwrite the vtable slot after the constructor ran but before
        // the dispatch loads it.
        inject::onceAtPc(
            sim, dispatchPc_ - 7 /* the LD */, /*min_index=*/0,
            [this](core::Simulator &s) {
                s.memory().write64(prog::kHeapBase, evil_);
            },
            triggered_);
    }

    bool
    goalAchieved(core::Simulator &sim) override
    {
        return sim.memory().read64(kSecretAddr) == 666;
    }

  private:
    Addr dispatchPc_ = 0;
    Addr evil_ = 0;
};

// ---------------------------------------------------------------------------
// 6. Return-to-libc: redirect a return to a legitimate library entry
//    point.
// ---------------------------------------------------------------------------

class ReturnToLibc : public Attack
{
  public:
    const char *name() const override { return "return-to-libc"; }

    const char *
    table1Mechanism() const override
    {
        return "control-flow path will not match statically known path";
    }

    TamperClass
    tamperClass() const override
    {
        return TamperClass::ControlFlowHijack;
    }

  protected:
    Program
    buildVictim() override
    {
        Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        a.movi(5, static_cast<i32>(kSecretAddr));
        a.call("worker");
        a.halt();

        a.label("worker");
        a.addi(1, 1, 1);
        // Never-taken guard keeps libc_system a statically known entry
        // point (it has legitimate callers elsewhere in a real system).
        a.bne(0, 0, "libc_system");
        retPc_ = a.ret();

        // "libc system()": a legitimate, signed function -- but never a
        // valid return target of worker's caller.
        a.label("libc_system");
        a.movi(2, 666);
        a.st(2, 5, 0);
        a.halt();

        Program p;
        p.addModule(a.finalize("victim", "main"));
        libc_ = p.main().symbol("libc_system");
        return p;
    }

    void
    arm(core::Simulator &sim) override
    {
        inject::onceAtPc(
            sim, retPc_, /*min_index=*/0,
            [this](core::Simulator &s) {
                inject::smashReturnAddress(s, libc_);
            },
            triggered_);
    }

    bool
    goalAchieved(core::Simulator &sim) override
    {
        return sim.memory().read64(kSecretAddr) == 666;
    }

  private:
    Addr retPc_ = 0;
    Addr libc_ = 0;
};

// ---------------------------------------------------------------------------
// 7. Illegal dynamic linking: a module is mapped and invoked without the
//    trusted linker (no signature table, no SAG registration, no site
//    annotation) -- one of the compromise classes in the paper's intro.
// ---------------------------------------------------------------------------

class IllegalDynamicLinking : public Attack
{
  public:
    const char *name() const override { return "illegal-dynamic-linking"; }

    const char *
    table1Mechanism() const override
    {
        return "callee has no reference signatures; transfer not in "
               "static analysis";
    }

    TamperClass
    tamperClass() const override
    {
        return TamperClass::ForeignCode;
    }

  protected:
    Program
    buildVictim() override
    {
        Assembler a(prog::kDefaultCodeBase);
        a.label("main");
        a.movi(5, static_cast<i32>(kSecretAddr));
        // Plugin dispatch through a writable pointer slot.
        a.la(4, "plugin_slot");
        a.ld(4, 4, 0);
        const Addr site = a.callr(4);
        a.annotateIndirect(site, {"builtin_plugin"});
        a.halt();

        a.label("builtin_plugin");
        a.addi(1, 1, 1);
        a.ret();

        a.beginData();
        a.align(8);
        a.label("plugin_slot");
        a.word64Label("builtin_plugin");

        Program p;
        p.addModule(a.finalize("victim", "main"));
        slot_ = p.main().symbol("plugin_slot");
        return p;
    }

    void
    arm(core::Simulator &sim) override
    {
        // "Link" the rogue plugin: write its image into fresh memory and
        // repoint the dispatch slot -- skipping the trusted linker, so no
        // table, no annotations, no SAG entry.
        const Addr rogue_base = 0x90000;
        Assembler a(rogue_base);
        a.label("entry");
        a.movi(2, 666);
        a.st(2, 5, 0);
        a.ret();
        const prog::Module rogue = a.finalize("rogue", "entry");
        inject::tamperCode(sim, rogue.base, rogue.image);
        sim.memory().write64(slot_, rogue.symbol("entry"));
        triggered_ = true;
    }

    bool
    goalAchieved(core::Simulator &sim) override
    {
        return sim.memory().read64(kSecretAddr) == 666;
    }

  private:
    Addr slot_ = 0;
};

} // namespace

std::vector<std::unique_ptr<Attack>>
makeAllAttacks()
{
    std::vector<std::unique_ptr<Attack>> all;
    all.push_back(std::make_unique<DirectCodeInjection>());
    all.push_back(std::make_unique<IndirectCodeInjection>());
    all.push_back(std::make_unique<ReturnOriented>());
    all.push_back(std::make_unique<JumpOriented>());
    all.push_back(std::make_unique<VtableCompromise>());
    all.push_back(std::make_unique<ReturnToLibc>());
    all.push_back(std::make_unique<IllegalDynamicLinking>());
    return all;
}

} // namespace rev::attacks
