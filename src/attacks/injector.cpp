#include "attacks/injector.hpp"

#include "isa/opcodes.hpp"

namespace rev::attacks::inject
{

void
tamperCode(core::Simulator &sim, Addr addr, const u8 *data, std::size_t len)
{
    sim.memory().writeBytes(addr, data, len);
    sim.validator()->invalidateCodeCache();
}

void
smashReturnAddress(core::Simulator &sim, Addr target)
{
    const Addr sp = sim.core().machine().reg(isa::kRegSp);
    if (sim.memory().read64(sp) == target)
        ++target;
    sim.memory().write64(sp, target);
}

bool
returnAt(core::Simulator &sim, Addr pc)
{
    const prog::Predecoded *p = sim.core().machine().predecode(pc);
    return p && p->ins.klass() == isa::InstrClass::Return;
}

void
onceAtPc(core::Simulator &sim, Addr pc, u64 min_index, Action fn,
         bool &fired)
{
    sim.core().setPreStepHook(
        [&sim, pc, min_index, fn = std::move(fn), &fired](u64 idx,
                                                          Addr cur) {
            if (!fired && idx >= min_index && cur == pc) {
                fired = true;
                fn(sim);
            }
        });
}

void
onceAtIndex(core::Simulator &sim, u64 index, Action fn, bool &fired)
{
    sim.core().setPreStepHook(
        [&sim, index, fn = std::move(fn), &fired](u64 idx, Addr) {
            if (!fired && idx >= index) {
                fired = true;
                fn(sim);
            }
        });
}

void
onceAtReturn(core::Simulator &sim, u64 min_index, Action fn, bool &fired)
{
    sim.core().setPreStepHook(
        [&sim, min_index, fn = std::move(fn), &fired](u64 idx, Addr pc) {
            if (!fired && idx >= min_index && returnAt(sim, pc)) {
                fired = true;
                fn(sim);
            }
        });
}

} // namespace rev::attacks::inject
