#include "core/rev_engine.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"

namespace rev::core
{

using isa::InstrClass;
using sig::ValidationMode;

namespace
{

bool
contains(const std::vector<Addr> &v, Addr a)
{
    return std::find(v.begin(), v.end(), a) != v.end();
}

std::string
hex(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

} // namespace

RevEngine::RevEngine(const sig::SigStore &store,
                     const crypto::KeyVault &vault, const SparseMemory &mem,
                     mem::MemorySystem &memsys, const RevConfig &cfg)
    : store_(store), vault_(vault), mem_(mem), memsys_(memsys), cfg_(cfg),
      sc_(cfg.sc), sag_(cfg.sagEntries), chg_(mem, cfg.chg),
      enabled_(cfg.startEnabled)
{
    // The trusted linker pre-loads the SAG for statically linked modules
    // (Sec. IV.B); modules beyond the SAG capacity fault in at run time.
    preloadSag();
}

void
RevEngine::preloadSag()
{
    unsigned installed = 0;
    for (const auto &ms : store_.moduleSigs()) {
        if (installed >= sag_.capacity())
            break;
        sag_.install(ms.module->base, ms.module->codeEnd(), ms.tableBase);
        ++installed;
    }
}

bool
RevEngine::isComputedClass(InstrClass c)
{
    return c == InstrClass::CallIndirect || c == InstrClass::JumpIndirect;
}

const sig::TableReader &
RevEngine::readerFor(Addr table_base)
{
    auto it = readers_.find(table_base);
    if (it == readers_.end()) {
        it = readers_
                 .emplace(table_base, std::make_unique<sig::TableReader>(
                                          mem_, table_base, vault_))
                 .first;
        if (!it->second->valid())
            warn("REV: signature table at ", hex(table_base),
                 " failed authentication");
    }
    return *it->second;
}

sig::LookupResult
RevEngine::walk(const SagEntry &sag_entry, Addr term, u32 key,
                Cycle from, Cycle &ready_at, const sig::WalkNeeds &needs)
{
    const sig::TableReader &reader = readerFor(sag_entry.tableBase);
    sig::LookupResult res;
    if (reader.valid()) {
        res = reader.mode() == ValidationMode::CfiOnly
                  ? reader.lookupSite(term, sag_entry.moduleBase, &needs)
                  : reader.lookup(term, key, sag_entry.moduleBase, &needs);
    }
    Cycle t = from;
    for (Addr a : res.memAddrs)
        t = memsys_.access(a, mem::AccessType::ScFill, t).completeAt;
    stats_.tableWalkReads += res.memAddrs.size();
    ready_at = t + cfg_.decryptLatency;
    return res;
}

void
RevEngine::onBBFetched(const cpu::BBFetchInfo &info)
{
    cur_ = PendingBB{};
    cur_.valid = true;
    cur_.info = info;
    curScHit_ = false;
    curPartial_ = false;
    curStall_ = 0;

    if (!enabled_) {
        cur_.bypass = true;
        return;
    }

    const ValidationMode mode = store_.mode();

    // CFI-only validates computed transfers and returns; every other block
    // commits unchecked (Sec. V.D).
    if (mode == ValidationMode::CfiOnly &&
        !isComputedClass(info.termClass) &&
        info.termClass != InstrClass::Return) {
        cur_.bypass = true;
        return;
    }

    Cycle t = info.fetchDoneAt;

    // --- SAG: which module / table owns this block? -----------------------
    const SagEntry *sag_entry = sag_.match(info.term);
    if (!sag_entry) {
        ++stats_.sagExceptions;
        t += cfg_.sagMissPenalty;
        if (const sig::ModuleSig *ms = store_.findByCode(info.term)) {
            sag_.install(ms->module->base, ms->module->codeEnd(),
                         ms->tableBase);
            sag_entry = sag_.match(info.term);
        }
    }
    if (!sag_entry) {
        // Code outside every registered module: nothing can authenticate it.
        cur_.refFound = false;
        cur_.scReadyAt = t;
        return;
    }

    // --- CHG ----------------------------------------------------------------
    if (mode != ValidationMode::CfiOnly) {
        cur_.computedHash = chg_.digest(info.start, info.term, info.end);
        cur_.hashReadyAt = chg_.readyAt(info.fetchDoneAt);
    }

    // --- SC probe -------------------------------------------------------------
    const Addr sc_start = mode == ValidationMode::CfiOnly ? info.term
                                                          : info.start;
    ScEntry *entry = sc_.probe(info.term, sc_start);

    const bool need_target =
        mode == ValidationMode::CfiOnly
            ? true
            : (isComputedClass(info.termClass) ||
               (mode == ValidationMode::Aggressive &&
                info.termClass != InstrClass::Return &&
                info.termClass != InstrClass::Halt));
    const bool need_pred =
        mode != ValidationMode::CfiOnly &&
        cfg_.returnValidation == ReturnValidation::DelayedPredecessor &&
        pendingReturn_.has_value();

    // Aggressive entries verify up to two successors (Sec. VIII); CFI-only
    // entries are hash-free and small enough to cache two MRU targets in
    // the same SRAM budget.
    const bool two_slots = mode != ValidationMode::Full;
    if (entry) {
        const bool target_ok =
            !need_target ||
            (entry->succ && *entry->succ == info.nextStart) ||
            (two_slots && entry->succ2 && *entry->succ2 == info.nextStart);
        const bool pred_ok =
            !need_pred || (entry->pred && *entry->pred == *pendingReturn_);
        if (target_ok && pred_ok) {
            // Full hit: validate from the cached entry.
            curScHit_ = true;
            cur_.refFound = true;
            cur_.refHash = entry->hash;
            if (entry->succ)
                cur_.refTargets.push_back(*entry->succ);
            if (two_slots && entry->succ2)
                cur_.refTargets.push_back(*entry->succ2);
            if (entry->pred)
                cur_.refPreds.push_back(*entry->pred);
            cur_.scReadyAt = t;
            return;
        }
        // Partial miss: the entry lacks the needed successor/predecessor.
        curPartial_ = true;
        ++stats_.scPartialMisses;
        sig::WalkNeeds needs;
        if (need_target)
            needs.target = info.nextStart;
        if (need_pred)
            needs.pred = *pendingReturn_;
        // Partial-miss walks present the entry's reference hash (the SC
        // already authenticated this block's code).
        const sig::LookupResult ref = walk(*sag_entry, info.term,
                                           entry->hash, t, cur_.scReadyAt,
                                           needs);
        cur_.refFound = ref.found;
        cur_.termSeen = ref.termSeen;
        cur_.refHash = ref.found ? ref.hash : entry->hash;
        cur_.refTargets = ref.targets;
        cur_.refPreds = ref.retPreds;
        // MRU update (only legitimate addresses are cached).
        if (ref.found) {
            if (need_target && contains(ref.targets, info.nextStart)) {
                if (two_slots)
                    entry->succ2 = entry->succ;
                entry->succ = info.nextStart;
            }
            if (need_pred && contains(ref.retPreds, *pendingReturn_))
                entry->pred = *pendingReturn_;
        }
        return;
    }

    // Complete miss: fetch + decrypt the reference entry from RAM.
    ++stats_.scCompleteMisses;
    sig::WalkNeeds needs;
    if (need_target)
        needs.target = info.nextStart;
    if (need_pred)
        needs.pred = *pendingReturn_;
    // Complete-miss walks present the CHG digest as the discriminator.
    const sig::LookupResult ref = walk(*sag_entry, info.term,
                                       cur_.computedHash, t,
                                       cur_.scReadyAt, needs);
    cur_.refFound = ref.found;
    cur_.termSeen = ref.termSeen;
    cur_.refHash = ref.hash;
    cur_.refTargets = ref.targets;
    cur_.refPreds = ref.retPreds;
    if (ref.found) {
        ScEntry &fresh = sc_.insert(info.term, sc_start);
        fresh.hash = ref.hash;
        fresh.kind = ref.termKind;
        if (contains(ref.targets, info.nextStart))
            fresh.succ = info.nextStart;
        else if (!ref.targets.empty())
            fresh.succ = ref.targets.front();
        if (two_slots) {
            for (Addr cand : ref.targets) {
                if (!fresh.succ || cand != *fresh.succ) {
                    fresh.succ2 = cand;
                    break;
                }
            }
        }
        if (pendingReturn_ && contains(ref.retPreds, *pendingReturn_))
            fresh.pred = *pendingReturn_;
        else if (!ref.retPreds.empty())
            fresh.pred = ref.retPreds.front();
    }
}

Cycle
RevEngine::commitReadyAt(BBSeq bb, Cycle earliest)
{
    if (!cur_.valid || cur_.info.bbSeq != bb || cur_.bypass)
        return earliest;
    Cycle ready = std::max({earliest, cur_.hashReadyAt, cur_.scReadyAt});
    if (shadowPenaltyAt_ > ready)
        ready = shadowPenaltyAt_; // shadow-stack spill/refill round trip
    shadowPenaltyAt_ = 0;
    curStall_ = ready - earliest;
    stats_.commitStallCycles += curStall_;
    return ready;
}

bool
RevEngine::validateBB(BBSeq bb, Addr actual_target, Cycle commit_cycle)
{
    if (!cur_.valid || cur_.info.bbSeq != bb || cur_.bypass) {
        cur_ = PendingBB{};
        return true;
    }
    const cpu::BBFetchInfo info = cur_.info;
    const ValidationMode mode = store_.mode();

    auto emit_trace = [&](bool passed, const std::string &reason) {
        if (!trace_)
            return;
        ValidationEvent ev;
        ev.bbSeq = info.bbSeq;
        ev.start = info.start;
        ev.term = info.term;
        ev.commitCycle = commit_cycle;
        ev.hash = cur_.computedHash;
        ev.scHit = curScHit_;
        ev.partialMiss = curPartial_;
        ev.stallCycles = curStall_;
        ev.passed = passed;
        ev.reason = reason;
        trace_(ev);
    };

    auto fail = [&](const std::string &reason) {
        ++stats_.violations;
        lastViolation_ = reason + " (bb " + hex(info.start) + ".." +
                         hex(info.term) + ")";
        // Keep the offender's signature for later recognition
        // (paper, Sec. X).
        offenders_.push_back({info.start, info.term, cur_.computedHash,
                              lastViolation_});
        emit_trace(false, lastViolation_);
        cur_ = PendingBB{};
        return false;
    };

    if (!cur_.refFound) {
        return fail(cur_.termSeen
                        ? "basic-block hash mismatch"
                        : "no reference signature for basic block");
    }

    if (mode != ValidationMode::CfiOnly) {
        if (cur_.computedHash != cur_.refHash)
            return fail("basic-block hash mismatch");

        if (cfg_.returnValidation == ReturnValidation::DelayedPredecessor) {
            // Delayed return validation (Sec. V.A): this block was
            // entered following a return; its entry lists the legitimate
            // RET predecessors.
            if (pendingReturn_) {
                if (!contains(cur_.refPreds, *pendingReturn_))
                    return fail("return from " + hex(*pendingReturn_) +
                                " to unexpected site");
                pendingReturn_.reset();
            }
        }
    }

    // Explicit target validation: always in CFI-only (only computed/return
    // blocks get here), computed transfers in Full, and every non-return
    // branch in Aggressive.
    bool check_target = isComputedClass(info.termClass);
    if (mode == ValidationMode::CfiOnly)
        check_target = true;
    else if (mode == ValidationMode::Aggressive &&
             info.termClass != InstrClass::Return &&
             info.termClass != InstrClass::Halt)
        check_target = true;
    if (check_target && !contains(cur_.refTargets, actual_target))
        return fail("illegal transfer to " + hex(actual_target));

    if (mode != ValidationMode::CfiOnly &&
        cfg_.returnValidation == ReturnValidation::DelayedPredecessor) {
        // Arm the return latch for the next block (Full/Aggressive).
        if (info.termClass == InstrClass::Return)
            pendingReturn_ = info.term;
    } else if (mode != ValidationMode::CfiOnly) {
        // Shadow call stack (the conventional alternative).
        if (info.termClass == InstrClass::Call ||
            info.termClass == InstrClass::CallIndirect) {
            shadowStack_.push_back(info.end);
            if (shadowStack_.size() - shadowSpilled_ >
                cfg_.shadowStackEntries) {
                // On-chip stack full: spill the older half to memory.
                shadowSpilled_ += cfg_.shadowStackEntries / 2;
                ++stats_.shadowSpills;
                shadowPenaltyAt_ =
                    commit_cycle + cfg_.shadowSpillPenalty;
            }
        } else if (info.termClass == InstrClass::Return) {
            if (shadowStack_.empty())
                return fail("shadow stack underflow on return");
            if (shadowStack_.size() == shadowSpilled_ &&
                shadowSpilled_ > 0) {
                // On-chip stack empty: refill a batch from memory.
                shadowSpilled_ -=
                    std::min<u64>(shadowSpilled_,
                                  cfg_.shadowStackEntries / 2);
                ++stats_.shadowRefills;
                shadowPenaltyAt_ =
                    commit_cycle + cfg_.shadowSpillPenalty;
            }
            const Addr expected = shadowStack_.back();
            shadowStack_.pop_back();
            if (actual_target != expected)
                return fail("return to " + hex(actual_target) +
                            " violates shadow stack (expected " +
                            hex(expected) + ")");
        }
    }

    ++stats_.bbValidated;
    emit_trace(true, "");
    cur_ = PendingBB{};
    return true;
}

void
RevEngine::onMispredictResolved(Cycle resolve_cycle)
{
    (void)resolve_cycle;
    if (enabled_)
        chg_.flush();
}

void
RevEngine::refreshTables()
{
    readers_.clear();
    sc_.invalidateAll();
    chg_.invalidate();
    sag_.reset();
    preloadSag();
}

RevEngine::ThreadState
RevEngine::saveThreadState() const
{
    return ThreadState{pendingReturn_, shadowStack_, shadowSpilled_};
}

void
RevEngine::restoreThreadState(const ThreadState &state)
{
    pendingReturn_ = state.pendingReturn;
    shadowStack_ = state.shadowStack;
    shadowSpilled_ = state.shadowSpilled;
}

void
RevEngine::onInterrupt(Cycle cycle)
{
    (void)cycle;
    // The current block has already validated; the refetched stream
    // restarts the CHG, and any wrong-path SC prefetches are dropped.
    if (enabled_)
        chg_.flush();
}

void
RevEngine::onSyscall(u8 service, Cycle commit_cycle)
{
    (void)commit_cycle;
    // Sec. VII: one protected system call disables REV (for trusted
    // self-modifying code), another re-enables it.
    if (service == 1)
        enabled_ = false;
    else if (service == 2)
        enabled_ = true;
}

void
RevEngine::addStats(stats::StatGroup &group) const
{
    sc_.addStats(group);
    sag_.addStats(group);
    chg_.addStats(group);
}

} // namespace rev::core
