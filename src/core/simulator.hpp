/**
 * @file
 * Top-level simulation harness: wires a Program, its signature tables,
 * the functional memory, the memory hierarchy, the OoO core, and the
 * selected validation backend together. This is the primary entry point
 * of the library.
 *
 * Typical use:
 *
 *   prog::Program p = ...;             // build or generate a program
 *   core::SimConfig cfg;
 *   cfg.backend = validate::Backend::Rev;  // the default
 *   core::Simulator sim(p, cfg);
 *   core::SimResult r = sim.run();
 *   std::cout << r.run.ipc();
 */

#ifndef REV_CORE_SIMULATOR_HPP
#define REV_CORE_SIMULATOR_HPP

#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "common/stats.hpp"
#include "cpu/core.hpp"
#include "program/trace.hpp"
#include "validate/registry.hpp"

namespace rev::core
{

/** Simulation configuration. */
struct SimConfig
{
    cpu::CoreConfig core;
    mem::MemConfig mem;
    validate::RevConfig rev;     ///< Backend::Rev parameters
    validate::LoFatConfig lofat; ///< Backend::LoFat parameters
    sig::ValidationMode mode = sig::ValidationMode::Full;

    /** Attach validation machinery (false = paper's base case; the
     *  selected backend is replaced by Backend::Null). */
    bool withRev = true;

    /** Which validation backend to attach (see validate/registry.hpp). */
    validate::Backend backend = validate::Backend::Rev;

    /**
     * Sec. IV.A strict R5: treat the whole run as a transaction against
     * shadow pages. If the execution fails authentication, the entire
     * memory state is rolled back to its pre-run content (instead of only
     * squashing the offending block's stores). See core/shadow.hpp for
     * the page-granular mechanism itself.
     */
    bool pageShadowing = false;

    /**
     * Number of simulated cores. Each core is a full CoreSlot — its own
     * COW fork of the loaded memory image, its own validator instance
     * (per-core SC-fill traffic), its own OoO core — all contending for
     * the one shared L2/DRAM through per-core memory-system ports. 1 is
     * the historical single-core machine, bit-identical to every pinned
     * golden; N>1 time-slices the slots deterministically (see
     * schedQuantumInstrs).
     */
    unsigned numCores = 1;

    /**
     * Multicore scheduling quantum in committed instructions. The
     * scheduler repeatedly runs the least-advanced slot (ties broken by
     * core id) up to its next quantum boundary, so the cross-core
     * interleaving of memory-system traffic is a pure function of the
     * per-core committed counts — snapshots/forks resume the identical
     * schedule. Ignored at numCores == 1 (the single core runs to
     * completion in one slice).
     */
    u64 schedQuantumInstrs = 64;

    /**
     * When nonzero, the 8-byte word at this address in each core's
     * private memory is set to the core index after load (a hartid
     * register in disguise): workloads read it to diverge per core —
     * e.g. the preemptive-scheduler workload rotates its thread schedule
     * so threads migrate across cores. 0 (default) writes nothing, so
     * single-core goldens and recorded traces are unaffected.
     */
    Addr coreIdAddr = 0;

    u64 cpuSeed = 1;      ///< per-CPU key-vault fuses
    u64 toolchainSeed = 1; ///< per-module key generation

    /**
     * Optional pre-built signature store to clone instead of deriving the
     * CFGs and building the tables from scratch (the most expensive part
     * of constructing a Simulator). The prototype must have been built
     * for the same program with the same mode, seeds, split limits, and
     * hash rounds — the table build is deterministic in those inputs, so
     * cloning yields byte-identical tables and therefore identical
     * simulated statistics. The benchmark sweep uses this to share one
     * build across configs that differ only in timing parameters.
     */
    const sig::SigStore *sigStorePrototype = nullptr;

    /**
     * Optional pre-loaded memory image to COW-fork instead of loading
     * the program image and signature tables page by page. Must hold
     * exactly what this simulator's own load phase would produce — i.e.
     * be the post-load memory of a Simulator built from the same
     * program, mode, seeds, and (shared via @ref sigStorePrototype)
     * table build; requires a prototype whenever the backend needs
     * tables, so image and tables cannot drift apart. The benchmark
     * sweep builds one image per (benchmark, mode) and forks it across
     * every timing config, O(pages touched) instead of O(image bytes).
     * Must outlive the Simulator.
     */
    const SparseMemory *memoryImage = nullptr;

    /**
     * Optional trace recorder: the architectural event stream of the run
     * is appended to it (see program/trace.hpp). Mutually exclusive with
     * @ref replayTrace.
     */
    prog::TraceRecorder *traceRecorder = nullptr;

    /**
     * Optional prover-side measurement sink (validate/stream.hpp): the
     * attached backend serializes its measurement session into it — the
     * header at construction, one record per validated block, and the
     * End seal when the run completes (halts or faults). A standalone
     * StreamVerifier can then re-render the run's verdict from the bytes
     * alone. Must outlive the Simulator.
     */
    validate::MeasurementSink *measurementSink = nullptr;

    /**
     * Optional recorded trace to replay instead of executing semantics.
     * Attached only when it matches this simulation (replayable, same
     * entry PC, instruction budget, split limits, and code-page
     * versions); otherwise the run silently falls back to direct
     * execution — check replayActive() to see which happened. The Trace
     * must outlive the Simulator.
     */
    const prog::Trace *replayTrace = nullptr;

    /** The backend actually attached: the configured one, or Null when
     *  validation is off. */
    validate::Backend
    effectiveBackend() const
    {
        return withRev ? backend : validate::Backend::Null;
    }
};

/** Results of one simulated run. */
struct SimResult
{
    /**
     * Aggregate run result. At numCores == 1 this is exactly the single
     * core's result. At N>1: cycles is the maximum across cores (wall
     * clock of the machine), the event counters are summed, halted means
     * every core halted cleanly, and violation is the earliest across
     * cores (by cycle, then core id).
     */
    cpu::RunResult run;

    /** Per-core results, one per slot (size == numCores). */
    std::vector<cpu::RunResult> perCore;

    /** Backend-independent counter slice (any backend). */
    validate::ValidationStats validation;

    validate::RevStats rev;     ///< zeros unless the Rev backend ran
    validate::LoFatStats lofat; ///< zeros unless the LoFat backend ran

    // Fig. 10/11 inputs: validation fill/spill traffic through the
    // hierarchy.
    u64 scFillAccesses = 0;
    u64 scFillL1Misses = 0;
    u64 scFillL2Misses = 0;

    u64 sigTableBytes = 0; ///< total signature-table footprint in RAM

    /** pageShadowing: the run failed and memory was rolled back. */
    bool memoryRolledBack = false;
};

/**
 * A complete machine state captured mid-run at a committed-instruction
 * boundary: the COW-forked memory image, the warmed memory hierarchy,
 * the core's architectural + timing-loop state, and the validation
 * backend's full mid-run state. Produced by Simulator::snapshotAt() /
 * capture(); any number of Simulators can be forked from one snapshot
 * (Simulator::forkFrom()), each continuing the run independently —
 * bit-identical to a cold run that executed the same prefix.
 *
 * Self-contained: the snapshot shares the (immutable) signature-table
 * build and the COW page set by refcount, so it remains valid after the
 * Simulator it was captured from is destroyed. Only the Program object
 * is borrowed and must outlive the snapshot and its forks.
 */
struct Snapshot
{
    const prog::Program *program = nullptr;
    SimConfig cfg; ///< harness pointers (recorder/replay/sink) cleared
    u64 instrIndex = 0; ///< core 0's committed instructions at capture
    SparseMemory mem;   ///< COW fork of core 0's image
    mem::MemorySystem memsys; ///< warmed caches / TLBs / DRAM banks
    cpu::Core::Snapshot core; ///< core 0's arch regs + timing-loop state
    std::unique_ptr<validate::ValidatorSnapshot> validatorState;
    std::shared_ptr<sig::SigStore> store; ///< shared table build

    /** State of one additional core (multicore capture). */
    struct ExtraSlot
    {
        SparseMemory mem; ///< COW fork of that core's private image
        cpu::Core::Snapshot core;
        std::unique_ptr<validate::ValidatorSnapshot> validatorState;
        /** Set when that core's run already ended (halt / violation /
         *  budget) before the capture: the fork must report the stored
         *  result rather than re-running a drained core, or its
         *  aggregate would diverge from a cold run's. */
        std::optional<cpu::RunResult> finished;
    };

    /** Cores 1..N-1, in core-id order (empty at numCores == 1). The
     *  scheduler itself needs no state here: the interleaving is a pure
     *  function of the per-core committed counts these slots carry. */
    std::vector<ExtraSlot> extra;
};

/**
 * One program, one machine, one validation backend.
 */
class Simulator
{
  public:
    Simulator(const prog::Program &program, const SimConfig &cfg = {});

    /** Run to completion and collect results. */
    SimResult run();

    /**
     * Run forward until just before committed-instruction index
     * @p index (cumulative since construction), so the next run() — or a
     * fork — continues with @p index as its first pre-step, exactly as a
     * cold run arriving there. Callable repeatedly with increasing
     * indices (the campaign's snapshot cursor). Requires direct
     * execution (no replay attached).
     *
     * @return true when paused at @p index; false when the run finished
     *         first (halt / violation / instruction budget).
     *
     * At numCores > 1, @p index addresses core 0's committed stream; the
     * other cores are advanced exactly as far as the deterministic
     * schedule dictates, so a fork resumes the identical interleaving.
     */
    bool runUntil(u64 index);

    /**
     * Capture a Snapshot of the current state — either the initial state
     * (before any run) or a runUntil() pause point.
     */
    Snapshot capture() const;

    /** runUntil(@p index) + capture(). Returns nothing when the run
     *  ended before reaching @p index. */
    std::optional<Snapshot>
    snapshotAt(u64 index)
    {
        if (!runUntil(index))
            return std::nullopt;
        return capture();
    }

    /**
     * Construct a Simulator continuing @p snap's run: O(dirty pages)
     * memory fork, value-copied hierarchy state, restored core and
     * validator. A subsequent run() commits exactly the instruction
     * stream a cold run would from the snapshot index on.
     */
    static std::unique_ptr<Simulator>
    forkFrom(const Snapshot &snap)
    {
        return std::unique_ptr<Simulator>(new Simulator(snap));
    }

    /**
     * The program object changed (a module was added by the dynamic
     * linker, or trusted code generation produced new functions): reload
     * every module image into memory, rebuild + reload the signature
     * tables, and refresh the backend's cached state (Sec. IV.B/IV.E).
     * Safe to call from a pre-step hook while a run is in progress.
     */
    void reloadProgram();

    /**
     * Snapshot every component's statistics (caches, TLBs, DRAM,
     * predictor, backend components, backend counters) as structured
     * (name, value) rows. This is the programmatic interface; dumpStats()
     * is just stats().dump(os).
     */
    stats::StatSet stats() const;

    /**
     * Dump every component's statistics (caches, TLBs, DRAM, predictor,
     * backend components, backend counters) as "name value" rows.
     */
    void dumpStats(std::ostream &os) const;

    /**
     * Zero every statistic while keeping all warmed state (caches, TLBs,
     * SC, predictor tables): run a warm-up quantum, resetStats(), then
     * measure a steady-state quantum.
     */
    void resetStats();

    /** Number of core slots. */
    unsigned numCores() const { return static_cast<unsigned>(slots_.size()); }

    /** Core @p id's core model (core 0 by default). */
    cpu::Core &core(unsigned id = 0) { return *slots_[id]->core; }

    /** The attached backend of core @p id (never null; NullValidator
     *  when none). */
    validate::Validator *validator(unsigned id = 0)
    {
        return slots_[id]->validator.get();
    }
    const validate::Validator *validator(unsigned id = 0) const
    {
        return slots_[id]->validator.get();
    }

    /** Core @p id's REV engine, or nullptr when another backend is
     *  attached. */
    validate::RevValidator *engine(unsigned id = 0)
    {
        return slots_[id]->revEngine;
    }

    /** Core @p id's LO-FAT engine, or nullptr when another backend is
     *  attached. */
    validate::LoFatValidator *lofat(unsigned id = 0)
    {
        return slots_[id]->lofatEngine;
    }

    SparseMemory &memory(unsigned id = 0) { return slots_[id]->mem; }
    const SparseMemory &memory(unsigned id = 0) const
    {
        return slots_[id]->mem;
    }
    mem::MemorySystem &memsys() { return memsys_; }
    const sig::SigStore *sigStore() const { return store_.get(); }

    /** True while core 0 is consuming cfg.replayTrace (false when the
     *  trace did not attach or a PreStepHook canceled the replay). */
    bool replayActive() const
    {
        return slots_.front()->core->machine().replaying();
    }

  private:
    /**
     * One core's private column of the machine: its COW memory image,
     * its validator instance, its OoO core, its replay cursor, and —
     * once its run ends inside the slice scheduler — its final result.
     * Heap-allocated so the references the core/validator hold into the
     * slot's memory stay stable.
     */
    struct CoreSlot
    {
        SparseMemory mem;      ///< private functional image
        SparseMemory pristine; ///< pre-run snapshot (pageShadowing only)
        std::unique_ptr<validate::Validator> validator;
        validate::RevValidator *revEngine = nullptr;     ///< typed view
        validate::LoFatValidator *lofatEngine = nullptr; ///< typed view
        std::unique_ptr<cpu::Core> core;
        std::unique_ptr<prog::TraceReplayer> replayer;
        std::optional<cpu::RunResult> finished; ///< run ended in a slice
    };

    /** Fork constructor — see forkFrom(). */
    explicit Simulator(const Snapshot &snap);

    /** Create the configured backend over @p slot's components and wire
     *  the typed engine views (shared by both constructors). */
    void createValidator(CoreSlot &slot, unsigned core_id);

    /** Build slot @p core_id's core model and, when the harness config
     *  asks for it, attach a replay cursor. */

    /** The slot the deterministic scheduler runs next: the unfinished
     *  slot with the smallest (completed quanta, core id). Null when
     *  every slot's run has ended. */
    CoreSlot *nextToRun();

    /** Fold the per-slot final results and counters into a SimResult
     *  (recorder finish, measurement seals, page-shadow rollback). */
    SimResult aggregate();

    /** Does @p t describe the architectural run a core over @p mem would
     *  execute here? */
    bool traceAttachable(const prog::Trace &t, const SparseMemory &mem) const;

    CoreSlot &slot0() { return *slots_.front(); }
    const CoreSlot &slot0() const { return *slots_.front(); }

    const prog::Program &program_;
    SimConfig cfg_;

    mem::MemorySystem memsys_;
    crypto::KeyVault vault_;
    std::shared_ptr<sig::SigStore> store_;
    std::vector<std::unique_ptr<CoreSlot>> slots_; ///< core-id order
};

} // namespace rev::core

#endif // REV_CORE_SIMULATOR_HPP
