/**
 * @file
 * Top-level simulation harness: wires a Program, its signature tables,
 * the functional memory, the memory hierarchy, the OoO core, and the
 * selected validation backend together. This is the primary entry point
 * of the library.
 *
 * Typical use:
 *
 *   prog::Program p = ...;             // build or generate a program
 *   core::SimConfig cfg;
 *   cfg.backend = validate::Backend::Rev;  // the default
 *   core::Simulator sim(p, cfg);
 *   core::SimResult r = sim.run();
 *   std::cout << r.run.ipc();
 */

#ifndef REV_CORE_SIMULATOR_HPP
#define REV_CORE_SIMULATOR_HPP

#include <memory>
#include <ostream>

#include "common/stats.hpp"
#include "cpu/core.hpp"
#include "program/trace.hpp"
#include "validate/registry.hpp"

namespace rev::core
{

/** Simulation configuration. */
struct SimConfig
{
    cpu::CoreConfig core;
    mem::MemConfig mem;
    validate::RevConfig rev;     ///< Backend::Rev parameters
    validate::LoFatConfig lofat; ///< Backend::LoFat parameters
    sig::ValidationMode mode = sig::ValidationMode::Full;

    /** Attach validation machinery (false = paper's base case; the
     *  selected backend is replaced by Backend::Null). */
    bool withRev = true;

    /** Which validation backend to attach (see validate/registry.hpp). */
    validate::Backend backend = validate::Backend::Rev;

    /**
     * Sec. IV.A strict R5: treat the whole run as a transaction against
     * shadow pages. If the execution fails authentication, the entire
     * memory state is rolled back to its pre-run content (instead of only
     * squashing the offending block's stores). See core/shadow.hpp for
     * the page-granular mechanism itself.
     */
    bool pageShadowing = false;

    u64 cpuSeed = 1;      ///< per-CPU key-vault fuses
    u64 toolchainSeed = 1; ///< per-module key generation

    /**
     * Optional pre-built signature store to clone instead of deriving the
     * CFGs and building the tables from scratch (the most expensive part
     * of constructing a Simulator). The prototype must have been built
     * for the same program with the same mode, seeds, split limits, and
     * hash rounds — the table build is deterministic in those inputs, so
     * cloning yields byte-identical tables and therefore identical
     * simulated statistics. The benchmark sweep uses this to share one
     * build across configs that differ only in timing parameters.
     */
    const sig::SigStore *sigStorePrototype = nullptr;

    /**
     * Optional pre-loaded memory image to COW-fork instead of loading
     * the program image and signature tables page by page. Must hold
     * exactly what this simulator's own load phase would produce — i.e.
     * be the post-load memory of a Simulator built from the same
     * program, mode, seeds, and (shared via @ref sigStorePrototype)
     * table build; requires a prototype whenever the backend needs
     * tables, so image and tables cannot drift apart. The benchmark
     * sweep builds one image per (benchmark, mode) and forks it across
     * every timing config, O(pages touched) instead of O(image bytes).
     * Must outlive the Simulator.
     */
    const SparseMemory *memoryImage = nullptr;

    /**
     * Optional trace recorder: the architectural event stream of the run
     * is appended to it (see program/trace.hpp). Mutually exclusive with
     * @ref replayTrace.
     */
    prog::TraceRecorder *traceRecorder = nullptr;

    /**
     * Optional prover-side measurement sink (validate/stream.hpp): the
     * attached backend serializes its measurement session into it — the
     * header at construction, one record per validated block, and the
     * End seal when the run completes (halts or faults). A standalone
     * StreamVerifier can then re-render the run's verdict from the bytes
     * alone. Must outlive the Simulator.
     */
    validate::MeasurementSink *measurementSink = nullptr;

    /**
     * Optional recorded trace to replay instead of executing semantics.
     * Attached only when it matches this simulation (replayable, same
     * entry PC, instruction budget, split limits, and code-page
     * versions); otherwise the run silently falls back to direct
     * execution — check replayActive() to see which happened. The Trace
     * must outlive the Simulator.
     */
    const prog::Trace *replayTrace = nullptr;

    /** The backend actually attached: the configured one, or Null when
     *  validation is off. */
    validate::Backend
    effectiveBackend() const
    {
        return withRev ? backend : validate::Backend::Null;
    }
};

/** Results of one simulated run. */
struct SimResult
{
    cpu::RunResult run;

    /** Backend-independent counter slice (any backend). */
    validate::ValidationStats validation;

    validate::RevStats rev;     ///< zeros unless the Rev backend ran
    validate::LoFatStats lofat; ///< zeros unless the LoFat backend ran

    // Fig. 10/11 inputs: validation fill/spill traffic through the
    // hierarchy.
    u64 scFillAccesses = 0;
    u64 scFillL1Misses = 0;
    u64 scFillL2Misses = 0;

    u64 sigTableBytes = 0; ///< total signature-table footprint in RAM

    /** pageShadowing: the run failed and memory was rolled back. */
    bool memoryRolledBack = false;
};

/**
 * A complete machine state captured mid-run at a committed-instruction
 * boundary: the COW-forked memory image, the warmed memory hierarchy,
 * the core's architectural + timing-loop state, and the validation
 * backend's full mid-run state. Produced by Simulator::snapshotAt() /
 * capture(); any number of Simulators can be forked from one snapshot
 * (Simulator::forkFrom()), each continuing the run independently —
 * bit-identical to a cold run that executed the same prefix.
 *
 * Self-contained: the snapshot shares the (immutable) signature-table
 * build and the COW page set by refcount, so it remains valid after the
 * Simulator it was captured from is destroyed. Only the Program object
 * is borrowed and must outlive the snapshot and its forks.
 */
struct Snapshot
{
    const prog::Program *program = nullptr;
    SimConfig cfg; ///< harness pointers (recorder/replay/sink) cleared
    u64 instrIndex = 0; ///< committed instructions at capture
    SparseMemory mem;   ///< COW fork of the source image
    mem::MemorySystem memsys; ///< warmed caches / TLBs / DRAM banks
    cpu::Core::Snapshot core; ///< arch regs + timing-loop state
    std::unique_ptr<validate::ValidatorSnapshot> validatorState;
    std::shared_ptr<sig::SigStore> store; ///< shared table build
};

/**
 * One program, one machine, one validation backend.
 */
class Simulator
{
  public:
    Simulator(const prog::Program &program, const SimConfig &cfg = {});

    /** Run to completion and collect results. */
    SimResult run();

    /**
     * Run forward until just before committed-instruction index
     * @p index (cumulative since construction), so the next run() — or a
     * fork — continues with @p index as its first pre-step, exactly as a
     * cold run arriving there. Callable repeatedly with increasing
     * indices (the campaign's snapshot cursor). Requires direct
     * execution (no replay attached).
     *
     * @return true when paused at @p index; false when the run finished
     *         first (halt / violation / instruction budget).
     */
    bool runUntil(u64 index) { return core_->runUntil(index); }

    /**
     * Capture a Snapshot of the current state — either the initial state
     * (before any run) or a runUntil() pause point.
     */
    Snapshot capture() const;

    /** runUntil(@p index) + capture(). Returns nothing when the run
     *  ended before reaching @p index. */
    std::optional<Snapshot>
    snapshotAt(u64 index)
    {
        if (!runUntil(index))
            return std::nullopt;
        return capture();
    }

    /**
     * Construct a Simulator continuing @p snap's run: O(dirty pages)
     * memory fork, value-copied hierarchy state, restored core and
     * validator. A subsequent run() commits exactly the instruction
     * stream a cold run would from the snapshot index on.
     */
    static std::unique_ptr<Simulator>
    forkFrom(const Snapshot &snap)
    {
        return std::unique_ptr<Simulator>(new Simulator(snap));
    }

    /**
     * The program object changed (a module was added by the dynamic
     * linker, or trusted code generation produced new functions): reload
     * every module image into memory, rebuild + reload the signature
     * tables, and refresh the backend's cached state (Sec. IV.B/IV.E).
     * Safe to call from a pre-step hook while a run is in progress.
     */
    void reloadProgram();

    /**
     * Snapshot every component's statistics (caches, TLBs, DRAM,
     * predictor, backend components, backend counters) as structured
     * (name, value) rows. This is the programmatic interface; dumpStats()
     * is just stats().dump(os).
     */
    stats::StatSet stats() const;

    /**
     * Dump every component's statistics (caches, TLBs, DRAM, predictor,
     * backend components, backend counters) as "name value" rows.
     */
    void dumpStats(std::ostream &os) const;

    /**
     * Zero every statistic while keeping all warmed state (caches, TLBs,
     * SC, predictor tables): run a warm-up quantum, resetStats(), then
     * measure a steady-state quantum.
     */
    void resetStats();

    cpu::Core &core() { return *core_; }

    /** The attached backend (never null; NullValidator when none). */
    validate::Validator *validator() { return validator_.get(); }
    const validate::Validator *validator() const { return validator_.get(); }

    /** The REV engine, or nullptr when another backend is attached. */
    validate::RevValidator *engine() { return revEngine_; }

    /** The LO-FAT engine, or nullptr when another backend is attached. */
    validate::LoFatValidator *lofat() { return lofatEngine_; }

    SparseMemory &memory() { return mem_; }
    const SparseMemory &memory() const { return mem_; }
    mem::MemorySystem &memsys() { return memsys_; }
    const sig::SigStore *sigStore() const { return store_.get(); }

    /** True while the core is consuming cfg.replayTrace (false when the
     *  trace did not attach or a PreStepHook canceled the replay). */
    bool replayActive() const { return core_->machine().replaying(); }

  private:
    /** Fork constructor — see forkFrom(). */
    explicit Simulator(const Snapshot &snap);

    /** Create the configured backend over this simulator's components
     *  and wire the typed engine views (shared by both constructors). */
    void createValidator();

    /** Does @p t describe this exact simulation's architectural run? */
    bool traceAttachable(const prog::Trace &t) const;

    const prog::Program &program_;
    SimConfig cfg_;

    SparseMemory mem_;
    SparseMemory pristine_; ///< pre-run snapshot (pageShadowing only)
    mem::MemorySystem memsys_;
    crypto::KeyVault vault_;
    std::shared_ptr<sig::SigStore> store_;
    std::unique_ptr<validate::Validator> validator_;
    validate::RevValidator *revEngine_ = nullptr;     ///< typed view
    validate::LoFatValidator *lofatEngine_ = nullptr; ///< typed view
    std::unique_ptr<cpu::Core> core_;
    std::unique_ptr<prog::TraceReplayer> replayer_;
};

} // namespace rev::core

#endif // REV_CORE_SIMULATOR_HPP
