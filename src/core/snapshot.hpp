/**
 * @file
 * Copy-on-write machine snapshots — the `sim::Snapshot` surface.
 *
 * A Snapshot (defined in core/simulator.hpp next to the harness that
 * produces it) is a complete machine state captured at a committed-
 * instruction boundary:
 *
 *   - the functional memory image as a page-level COW fork
 *     (SparseMemory::fork(): shared immutable pages, per-fork dirty-page
 *     overlay, O(dirty pages) per fork);
 *   - the warmed timing hierarchy (caches, TLBs, DRAM bank state) as a
 *     value copy;
 *   - the core's architectural registers plus the full mid-run state of
 *     its timing loop (cpu::Core::Snapshot: resource frontiers,
 *     scoreboard, store buffer, predictor, basic-block tracker);
 *   - the validation backend's complete mid-run state
 *     (validate::ValidatorSnapshot: inflight ring, hash chain, CHG lane
 *     queue and digest memo, SC/SAG contents, counters).
 *
 * Capture once per (workload, config) with Simulator::snapshotAt(), then
 * fork per divergent suffix with Simulator::forkFrom(); each fork
 * commits exactly the instruction stream — and reports exactly the
 * statistics — a cold run would from the snapshot index on. The
 * red-team campaign engine forks each injection from the warmed golden
 * snapshot at its trigger point instead of re-executing the prefix.
 */

#ifndef REV_CORE_SNAPSHOT_HPP
#define REV_CORE_SNAPSHOT_HPP

#include "core/simulator.hpp"

namespace rev::sim
{

using Snapshot = core::Snapshot;
using core::Simulator;

} // namespace rev::sim

#endif // REV_CORE_SNAPSHOT_HPP
