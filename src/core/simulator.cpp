#include "core/simulator.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace rev::core
{

using validate::Backend;

Simulator::Simulator(const prog::Program &program, const SimConfig &cfg)
    : program_(program), cfg_(cfg),
      memsys_(cfg.mem, cfg.numCores ? cfg.numCores : 1), vault_(cfg.cpuSeed)
{
    REV_ASSERT(cfg_.numCores >= 1, "SimConfig::numCores must be >= 1");
    REV_ASSERT(cfg_.numCores == 1 || cfg_.schedQuantumInstrs > 0,
               "multicore scheduling requires a nonzero quantum");

    slots_.push_back(std::make_unique<CoreSlot>());
    CoreSlot &s0 = slot0();
    if (cfg_.memoryImage)
        s0.mem = cfg_.memoryImage->fork();
    else
        program_.loadInto(s0.mem);

    const Backend backend = cfg_.effectiveBackend();
    const validate::BackendInfo *info =
        validate::ValidatorRegistry::instance().find(backend);
    REV_ASSERT(info, "unregistered validation backend");

    REV_ASSERT(!cfg_.memoryImage || !info->needsTables ||
                   cfg_.sigStorePrototype,
               "memoryImage with a table-backed validator requires the "
               "matching sigStorePrototype (the image already holds its "
               "loaded tables)");
    if (info->needsTables) {
        // CFI-only SC entries hold no hash and no predecessor (Sec. V.D):
        // the same SRAM budget holds twice as many entries.
        if (backend == Backend::Rev &&
            cfg_.mode == sig::ValidationMode::CfiOnly &&
            cfg_.rev.sc.entryBytes == validate::ScConfig{}.entryBytes) {
            cfg_.rev.sc.entryBytes = 8;
        }
        // Split limits of the toolchain and the front end must agree.
        prog::SplitLimits limits = cfg_.core.splitLimits;
        if (cfg_.sigStorePrototype) {
            const sig::SigStore &proto = *cfg_.sigStorePrototype;
            REV_ASSERT(proto.mode() == cfg_.mode &&
                           proto.hashRounds() == cfg_.rev.chg.hashRounds,
                       "sigStorePrototype was built with different "
                       "validation parameters");
            store_ = std::make_shared<sig::SigStore>(proto);
            store_->rebindVault(vault_);
        } else {
            store_ = std::make_shared<sig::SigStore>(
                program_, cfg_.mode, vault_, cfg_.toolchainSeed, limits,
                cfg_.rev.chg.hashRounds);
        }
        // A pre-loaded image already holds the tables this store built.
        if (!cfg_.memoryImage)
            store_->loadInto(s0.mem);
    }

    // Secondary cores run their own COW fork of the post-load image
    // (program + tables): architectural execution is private per core,
    // contention happens in the shared timing hierarchy.
    for (unsigned c = 1; c < cfg_.numCores; ++c) {
        slots_.push_back(std::make_unique<CoreSlot>());
        slots_.back()->mem = s0.mem.fork();
    }
    // hartid words go in after the forks so each core reads its own id.
    if (cfg_.coreIdAddr)
        for (unsigned c = 0; c < cfg_.numCores; ++c)
            slots_[c]->mem.write64(cfg_.coreIdAddr, c);

    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        CoreSlot &s = *slots_[c];
        createValidator(s, c);
        if (c == 0 && cfg_.measurementSink)
            s.validator->attachMeasurementSink(cfg_.measurementSink);
        s.core = std::make_unique<cpu::Core>(program_, s.mem, memsys_,
                                             cfg_.core, s.validator.get(), c);
        if (cfg_.pageShadowing)
            s.pristine = s.mem.clone();
    }

    REV_ASSERT(!(cfg_.traceRecorder && cfg_.replayTrace),
               "cannot record and replay a trace in the same run");
    if (cfg_.traceRecorder) {
        cfg_.traceRecorder->begin(program_.entry(), cfg_.core.maxInstrs,
                                  cfg_.core.splitLimits, s0.mem.epoch());
        s0.core->machine().attachRecorder(cfg_.traceRecorder);
    }
    if (cfg_.replayTrace) {
        for (unsigned c = 0; c < slots_.size(); ++c) {
            CoreSlot &s = *slots_[c];
            // A trace records core 0's architectural stream. With a
            // hartid word set, the other cores legitimately diverge from
            // it, so only core 0 may replay.
            if (c > 0 && cfg_.coreIdAddr)
                continue;
            if (!traceAttachable(*cfg_.replayTrace, s.mem))
                continue;
            s.replayer =
                std::make_unique<prog::TraceReplayer>(*cfg_.replayTrace);
            s.core->machine().attachReplayer(s.replayer.get());
        }
    }
}

void
Simulator::createValidator(CoreSlot &slot, unsigned core_id)
{
    validate::BackendContext ctx;
    ctx.store = store_.get();
    ctx.vault = &vault_;
    ctx.mem = &slot.mem;
    ctx.memsys = &memsys_;
    ctx.rev = cfg_.rev;
    ctx.lofat = cfg_.lofat;
    ctx.coreId = core_id;
    slot.validator = validate::ValidatorRegistry::instance().create(
        cfg_.effectiveBackend(), ctx);
    if (slot.validator->kind() == Backend::Rev)
        slot.revEngine =
            static_cast<validate::RevValidator *>(slot.validator.get());
    else if (slot.validator->kind() == Backend::LoFat)
        slot.lofatEngine =
            static_cast<validate::LoFatValidator *>(slot.validator.get());
}

Simulator::Simulator(const Snapshot &snap)
    : program_(*snap.program), cfg_(snap.cfg), memsys_(snap.memsys),
      vault_(snap.cfg.cpuSeed), store_(snap.store)
{
    // No loadInto(): the forked memories already hold the program image
    // and signature tables exactly as the source left them, and the
    // shared store carries the (immutable) table build.
    slots_.push_back(std::make_unique<CoreSlot>());
    CoreSlot &s0 = slot0();
    s0.mem = snap.mem.fork();
    createValidator(s0, 0);
    s0.core = std::make_unique<cpu::Core>(program_, s0.mem, memsys_,
                                          cfg_.core, s0.validator.get(), 0);
    s0.core->restoreState(snap.core);
    if (snap.validatorState)
        s0.validator->restoreSnapshot(*snap.validatorState);
    if (cfg_.pageShadowing)
        s0.pristine = s0.mem.clone();

    for (const Snapshot::ExtraSlot &e : snap.extra) {
        const unsigned c = static_cast<unsigned>(slots_.size());
        slots_.push_back(std::make_unique<CoreSlot>());
        CoreSlot &s = *slots_.back();
        s.mem = e.mem.fork();
        createValidator(s, c);
        s.core = std::make_unique<cpu::Core>(program_, s.mem, memsys_,
                                             cfg_.core, s.validator.get(), c);
        s.core->restoreState(e.core);
        if (e.validatorState)
            s.validator->restoreSnapshot(*e.validatorState);
        s.finished = e.finished;
        if (cfg_.pageShadowing)
            s.pristine = s.mem.clone();
    }
}

Snapshot
Simulator::capture() const
{
    for (const auto &s : slots_)
        REV_ASSERT(!s->core->machine().replaying(),
                   "snapshots require direct execution");
    Snapshot snap;
    snap.program = &program_;
    snap.cfg = cfg_;
    // Harness attachments describe THIS simulator's run, not a fork's:
    // forks record/replay/measure only what their own harness attaches.
    snap.cfg.traceRecorder = nullptr;
    snap.cfg.replayTrace = nullptr;
    snap.cfg.measurementSink = nullptr;
    snap.cfg.sigStorePrototype = nullptr;
    snap.cfg.memoryImage = nullptr; // snap.mem is the fork's image
    snap.instrIndex = slot0().core->committedInstrs();
    snap.mem = slot0().mem.fork();
    snap.memsys = memsys_;
    snap.core = slot0().core->saveState();
    snap.validatorState = slot0().validator->saveSnapshot();
    snap.store = store_;
    for (std::size_t c = 1; c < slots_.size(); ++c) {
        const CoreSlot &s = *slots_[c];
        Snapshot::ExtraSlot e;
        e.mem = s.mem.fork();
        e.core = s.core->saveState();
        e.validatorState = s.validator->saveSnapshot();
        e.finished = s.finished;
        snap.extra.push_back(std::move(e));
    }
    return snap;
}

bool
Simulator::traceAttachable(const prog::Trace &t, const SparseMemory &mem) const
{
    if (!t.replayable() || t.entryPc != program_.entry() ||
        t.maxInstrs != cfg_.core.maxInstrs ||
        !(t.splitLimits == cfg_.core.splitLimits))
        return false;
    // Every page the recorded run decoded from must hold exactly the
    // bytes it held then. Versions count writes since creation, and both
    // simulators perform the same deterministic load; a mismatch means
    // different code (or a page the recording run's mode wrote but this
    // one did not, e.g. a signature-table page reached by a wild
    // wrong-path fetch) — fall back to direct execution.
    for (const auto &[page, version] : t.codePages) {
        const SparseMemory::PageView v = mem.pageView(page);
        if ((v.version ? *v.version : 0) != version)
            return false;
    }
    return true;
}

void
Simulator::reloadProgram()
{
    // The code image is changing underneath the recording: a replay could
    // decode different bytes than the recorded run executed.
    if (cfg_.traceRecorder)
        cfg_.traceRecorder->markExternalMutation();
    if (store_) {
        // The table build is shared by refcount with snapshots and
        // sibling forks, and the attached validators reference this
        // exact store: rebuilding a shared build would corrupt every
        // fork. Dynamic linking therefore requires an owned build.
        REV_ASSERT(store_.use_count() == 1,
                   "reloadProgram() on a simulator sharing its table "
                   "build with snapshots/forks");
        store_->rebuild(program_);
    }
    for (auto &sp : slots_) {
        program_.loadInto(sp->mem);
        if (store_)
            store_->loadInto(sp->mem);
        sp->validator->refreshTables();
        if (cfg_.pageShadowing)
            sp->pristine = sp->mem.clone();
    }
}

bool
Simulator::runUntil(u64 index)
{
    if (slots_.size() == 1)
        return slot0().core->runUntil(index);

    // Snapshot cursors execute directly: a replayed machine maintains no
    // architectural state to capture.
    REV_ASSERT(!replayActive(), "runUntil() on a replaying machine");
    const u64 q = cfg_.schedQuantumInstrs;
    while (true) {
        if (slot0().finished)
            return false;
        CoreSlot *s = nextToRun();
        if (!s)
            return false;
        const bool is0 = s == slots_.front().get();
        const u64 committed = s->core->committedInstrs();
        if (is0 && committed >= index)
            return true;
        u64 target = (committed / q + 1) * q;
        if (is0)
            target = std::min(target, index);
        cpu::RunResult out;
        if (!s->core->runSlice(target, &out)) {
            s->finished = out;
            if (is0)
                return false;
        }
    }
}

Simulator::CoreSlot *
Simulator::nextToRun()
{
    // Deterministic stateless schedule: the least-advanced slot (in
    // completed quanta) runs next, ties to the lowest core id. Because
    // the pick is a pure function of the per-core committed counts, a
    // fork restored from a snapshot replays the identical cross-core
    // interleaving of memory-system traffic a cold run produces.
    const u64 q = cfg_.schedQuantumInstrs;
    CoreSlot *best = nullptr;
    u64 best_round = 0;
    for (auto &sp : slots_) {
        if (sp->finished)
            continue;
        const u64 round = sp->core->committedInstrs() / q;
        if (!best || round < best_round) {
            best = sp.get();
            best_round = round;
        }
    }
    return best;
}

stats::StatSet
Simulator::stats() const
{
    stats::StatSet set;
    stats::StatGroup group("sim");
    memsys_.addStats(group);
    if (slots_.size() == 1) {
        // Single-core: the historical row set, byte for byte.
        slot0().core->predictor().addStats(group);
        slot0().validator->addStats(group);
        group.snapshot(set);
        slot0().validator->snapshotStats(set, "sim");
        return set;
    }

    // Multicore: the memory system's shared + per-core rows, then one
    // "sim.cK." block per core (predictor, backend components, backend
    // counters).
    group.snapshot(set);
    for (std::size_t c = 0; c < slots_.size(); ++c) {
        const CoreSlot &s = *slots_[c];
        stats::StatGroup per("sim");
        s.core->predictor().addStats(per);
        s.validator->addStats(per);
        stats::StatSet sub;
        per.snapshot(sub);
        s.validator->snapshotStats(sub, "sim");
        const std::string prefix = "sim.c" + std::to_string(c) + ".";
        for (const auto &[name, value] : sub.rows())
            set.add(prefix + name.substr(4), value); // 4 = strlen("sim.")
    }
    return set;
}

void
Simulator::dumpStats(std::ostream &os) const
{
    stats().dump(os);
}

void
Simulator::resetStats()
{
    memsys_.resetStats();
    for (auto &sp : slots_)
        sp->validator->resetStats();
}

SimResult
Simulator::run()
{
    if (slots_.size() == 1) {
        slot0().finished = slot0().core->run();
        return aggregate();
    }

    // Slots that merely exhausted an instruction budget resume with a
    // fresh budget, like a repeated run() does on a single core; halted
    // or faulted slots keep their final result.
    for (auto &sp : slots_)
        if (sp->finished && !sp->finished->halted && !sp->finished->violation)
            sp->finished.reset();

    const u64 q = cfg_.schedQuantumInstrs;
    while (CoreSlot *s = nextToRun()) {
        const u64 target = (s->core->committedInstrs() / q + 1) * q;
        cpu::RunResult out;
        if (!s->core->runSlice(target, &out))
            s->finished = out;
    }
    return aggregate();
}

SimResult
Simulator::aggregate()
{
    SimResult res;
    res.perCore.reserve(slots_.size());
    for (auto &sp : slots_)
        res.perCore.push_back(sp->finished ? *sp->finished
                                           : cpu::RunResult{});

    if (slots_.size() == 1) {
        res.run = res.perCore.front();
    } else {
        bool all_halted = true;
        for (std::size_t c = 0; c < res.perCore.size(); ++c) {
            const cpu::RunResult &r = res.perCore[c];
            res.run.cycles = std::max(res.run.cycles, r.cycles);
            res.run.instrs += r.instrs;
            res.run.committedBranches += r.committedBranches;
            res.run.uniqueBranches += r.uniqueBranches;
            res.run.mispredicts += r.mispredicts;
            res.run.loads += r.loads;
            res.run.stores += r.stores;
            res.run.interrupts += r.interrupts;
            res.run.wrongPathFetches += r.wrongPathFetches;
            all_halted = all_halted && r.halted;
            // Earliest violation wins (by cycle, then core id).
            if (r.violation &&
                (!res.run.violation ||
                 r.violation->cycle < res.run.violation->cycle))
                res.run.violation = r.violation;
        }
        res.run.halted = all_halted && !res.run.violation;
    }

    if (cfg_.traceRecorder) {
        if (res.perCore.front().violation)
            cfg_.traceRecorder->markViolation();
        cfg_.traceRecorder->finish(slot0().core->machine());
    }

    for (std::size_t c = 0; c < slots_.size(); ++c) {
        const std::unique_ptr<CoreSlot> &sp = slots_[c];
        // A finished execution seals the measurement session; a quantum
        // that merely exhausted its instruction budget (warm-up/steady-
        // state phases) leaves the session open for the next run().
        const cpu::RunResult &r = res.perCore[c];
        if (r.halted || r.violation)
            sp->validator->sealMeasurement();

        const validate::ValidationStats v = sp->validator->commonStats();
        res.validation.bbValidated += v.bbValidated;
        res.validation.violations += v.violations;
        res.validation.commitStallCycles += v.commitStallCycles;
        if (sp->revEngine) {
            const validate::RevStats r2 = sp->revEngine->stats();
            res.rev.bbValidated += r2.bbValidated;
            res.rev.violations += r2.violations;
            res.rev.commitStallCycles += r2.commitStallCycles;
            res.rev.scCompleteMisses += r2.scCompleteMisses;
            res.rev.scPartialMisses += r2.scPartialMisses;
            res.rev.tableWalkReads += r2.tableWalkReads;
            res.rev.sagExceptions += r2.sagExceptions;
            res.rev.shadowSpills += r2.shadowSpills;
            res.rev.shadowRefills += r2.shadowRefills;
        }
        if (sp->lofatEngine) {
            const validate::LoFatStats l = sp->lofatEngine->stats();
            res.lofat.bbValidated += l.bbValidated;
            res.lofat.violations += l.violations;
            res.lofat.commitStallCycles += l.commitStallCycles;
            res.lofat.chainUpdates += l.chainUpdates;
            res.lofat.bufferSpills += l.bufferSpills;
            res.lofat.spillBytes += l.spillBytes;
            res.lofat.unattestedBlocks += l.unattestedBlocks;
            res.lofat.edgeViolations += l.edgeViolations;
        }
    }
    if (store_)
        res.sigTableBytes = store_->totalTableBytes();
    res.scFillAccesses = memsys_.accesses(mem::AccessType::ScFill);
    res.scFillL1Misses = memsys_.l1Misses(mem::AccessType::ScFill);
    res.scFillL2Misses = memsys_.l2Misses(mem::AccessType::ScFill);

    if (cfg_.pageShadowing && res.run.violation) {
        // Strict R5 (Sec. IV.A): the compromised execution's shadow pages
        // are never mapped in; the original state survives intact.
        for (auto &sp : slots_)
            sp->mem = sp->pristine.clone();
        res.memoryRolledBack = true;
    }
    return res;
}

} // namespace rev::core
