#include "core/simulator.hpp"

namespace rev::core
{

Simulator::Simulator(const prog::Program &program, const SimConfig &cfg)
    : program_(program), cfg_(cfg), memsys_(cfg.mem), vault_(cfg.cpuSeed)
{
    program_.loadInto(mem_);
    if (cfg_.withRev) {
        // CFI-only SC entries hold no hash and no predecessor (Sec. V.D):
        // the same SRAM budget holds twice as many entries.
        if (cfg_.mode == sig::ValidationMode::CfiOnly &&
            cfg_.rev.sc.entryBytes == ScConfig{}.entryBytes) {
            cfg_.rev.sc.entryBytes = 8;
        }
        // Split limits of the toolchain and the front end must agree.
        prog::SplitLimits limits = cfg_.core.splitLimits;
        store_ = std::make_unique<sig::SigStore>(
            program_, cfg_.mode, vault_, cfg_.toolchainSeed, limits,
            cfg_.rev.chg.hashRounds);
        store_->loadInto(mem_);
        engine_ = std::make_unique<RevEngine>(*store_, vault_, mem_,
                                              memsys_, cfg_.rev);
    }
    core_ = std::make_unique<cpu::Core>(program_, mem_, memsys_,
                                        cfg_.core, engine_.get());
    if (cfg_.pageShadowing)
        pristine_ = mem_.clone();
}

void
Simulator::reloadProgram()
{
    program_.loadInto(mem_);
    if (store_) {
        store_->rebuild(program_);
        store_->loadInto(mem_);
    }
    if (engine_)
        engine_->refreshTables();
    if (cfg_.pageShadowing)
        pristine_ = mem_.clone();
}

void
Simulator::dumpStats(std::ostream &os) const
{
    stats::StatGroup group("sim");
    memsys_.addStats(group);
    core_->predictor().addStats(group);
    if (engine_)
        engine_->addStats(group);
    group.dump(os);

    if (engine_) {
        const RevStats &rs = engine_->stats();
        os << "sim.rev.bb_validated " << rs.bbValidated << '\n';
        os << "sim.rev.sc_complete_misses " << rs.scCompleteMisses << '\n';
        os << "sim.rev.sc_partial_misses " << rs.scPartialMisses << '\n';
        os << "sim.rev.table_walk_reads " << rs.tableWalkReads << '\n';
        os << "sim.rev.violations " << rs.violations << '\n';
        os << "sim.rev.sag_exceptions " << rs.sagExceptions << '\n';
        os << "sim.rev.commit_stall_cycles " << rs.commitStallCycles
           << '\n';
        os << "sim.rev.shadow_spills " << rs.shadowSpills << '\n';
        os << "sim.rev.shadow_refills " << rs.shadowRefills << '\n';
    }
}

void
Simulator::resetStats()
{
    memsys_.resetStats();
    if (engine_)
        engine_->resetStats();
}

SimResult
Simulator::run()
{
    SimResult res;
    res.run = core_->run();
    if (engine_) {
        res.rev = engine_->stats();
        res.sigTableBytes = store_->totalTableBytes();
    }
    res.scFillAccesses = memsys_.accesses(mem::AccessType::ScFill);
    res.scFillL1Misses = memsys_.l1Misses(mem::AccessType::ScFill);
    res.scFillL2Misses = memsys_.l2Misses(mem::AccessType::ScFill);

    if (cfg_.pageShadowing && res.run.violation) {
        // Strict R5 (Sec. IV.A): the compromised execution's shadow pages
        // are never mapped in; the original state survives intact.
        mem_ = pristine_.clone();
        res.memoryRolledBack = true;
    }
    return res;
}

} // namespace rev::core
