#include "core/simulator.hpp"

#include "common/logging.hpp"

namespace rev::core
{

using validate::Backend;

Simulator::Simulator(const prog::Program &program, const SimConfig &cfg)
    : program_(program), cfg_(cfg), memsys_(cfg.mem), vault_(cfg.cpuSeed)
{
    if (cfg_.memoryImage)
        mem_ = cfg_.memoryImage->fork();
    else
        program_.loadInto(mem_);

    const Backend backend = cfg_.effectiveBackend();
    const validate::BackendInfo *info =
        validate::ValidatorRegistry::instance().find(backend);
    REV_ASSERT(info, "unregistered validation backend");

    REV_ASSERT(!cfg_.memoryImage || !info->needsTables ||
                   cfg_.sigStorePrototype,
               "memoryImage with a table-backed validator requires the "
               "matching sigStorePrototype (the image already holds its "
               "loaded tables)");
    if (info->needsTables) {
        // CFI-only SC entries hold no hash and no predecessor (Sec. V.D):
        // the same SRAM budget holds twice as many entries.
        if (backend == Backend::Rev &&
            cfg_.mode == sig::ValidationMode::CfiOnly &&
            cfg_.rev.sc.entryBytes == validate::ScConfig{}.entryBytes) {
            cfg_.rev.sc.entryBytes = 8;
        }
        // Split limits of the toolchain and the front end must agree.
        prog::SplitLimits limits = cfg_.core.splitLimits;
        if (cfg_.sigStorePrototype) {
            const sig::SigStore &proto = *cfg_.sigStorePrototype;
            REV_ASSERT(proto.mode() == cfg_.mode &&
                           proto.hashRounds() == cfg_.rev.chg.hashRounds,
                       "sigStorePrototype was built with different "
                       "validation parameters");
            store_ = std::make_shared<sig::SigStore>(proto);
            store_->rebindVault(vault_);
        } else {
            store_ = std::make_shared<sig::SigStore>(
                program_, cfg_.mode, vault_, cfg_.toolchainSeed, limits,
                cfg_.rev.chg.hashRounds);
        }
        // A pre-loaded image already holds the tables this store built.
        if (!cfg_.memoryImage)
            store_->loadInto(mem_);
    }

    createValidator();
    if (cfg_.measurementSink)
        validator_->attachMeasurementSink(cfg_.measurementSink);

    core_ = std::make_unique<cpu::Core>(program_, mem_, memsys_, cfg_.core,
                                        validator_.get());
    if (cfg_.pageShadowing)
        pristine_ = mem_.clone();

    REV_ASSERT(!(cfg_.traceRecorder && cfg_.replayTrace),
               "cannot record and replay a trace in the same run");
    if (cfg_.traceRecorder) {
        cfg_.traceRecorder->begin(program_.entry(), cfg_.core.maxInstrs,
                                  cfg_.core.splitLimits, mem_.epoch());
        core_->machine().attachRecorder(cfg_.traceRecorder);
    }
    if (cfg_.replayTrace && traceAttachable(*cfg_.replayTrace)) {
        replayer_ = std::make_unique<prog::TraceReplayer>(*cfg_.replayTrace);
        core_->machine().attachReplayer(replayer_.get());
    }
}

void
Simulator::createValidator()
{
    validate::BackendContext ctx;
    ctx.store = store_.get();
    ctx.vault = &vault_;
    ctx.mem = &mem_;
    ctx.memsys = &memsys_;
    ctx.rev = cfg_.rev;
    ctx.lofat = cfg_.lofat;
    validator_ = validate::ValidatorRegistry::instance().create(
        cfg_.effectiveBackend(), ctx);
    if (validator_->kind() == Backend::Rev)
        revEngine_ = static_cast<validate::RevValidator *>(validator_.get());
    else if (validator_->kind() == Backend::LoFat)
        lofatEngine_ =
            static_cast<validate::LoFatValidator *>(validator_.get());
}

Simulator::Simulator(const Snapshot &snap)
    : program_(*snap.program), cfg_(snap.cfg), mem_(snap.mem.fork()),
      memsys_(snap.memsys), vault_(snap.cfg.cpuSeed), store_(snap.store)
{
    // No loadInto(): the forked memory already holds the program image
    // and signature tables exactly as the source left them, and the
    // shared store carries the (immutable) table build.
    createValidator();
    core_ = std::make_unique<cpu::Core>(program_, mem_, memsys_, cfg_.core,
                                        validator_.get());
    core_->restoreState(snap.core);
    if (snap.validatorState)
        validator_->restoreSnapshot(*snap.validatorState);
    if (cfg_.pageShadowing)
        pristine_ = mem_.clone();
}

Snapshot
Simulator::capture() const
{
    REV_ASSERT(!core_->machine().replaying(),
               "snapshots require direct execution");
    Snapshot snap;
    snap.program = &program_;
    snap.cfg = cfg_;
    // Harness attachments describe THIS simulator's run, not a fork's:
    // forks record/replay/measure only what their own harness attaches.
    snap.cfg.traceRecorder = nullptr;
    snap.cfg.replayTrace = nullptr;
    snap.cfg.measurementSink = nullptr;
    snap.cfg.sigStorePrototype = nullptr;
    snap.cfg.memoryImage = nullptr; // snap.mem is the fork's image
    snap.instrIndex = core_->committedInstrs();
    snap.mem = mem_.fork();
    snap.memsys = memsys_;
    snap.core = core_->saveState();
    snap.validatorState = validator_->saveSnapshot();
    snap.store = store_;
    return snap;
}

bool
Simulator::traceAttachable(const prog::Trace &t) const
{
    if (!t.replayable() || t.entryPc != program_.entry() ||
        t.maxInstrs != cfg_.core.maxInstrs ||
        !(t.splitLimits == cfg_.core.splitLimits))
        return false;
    // Every page the recorded run decoded from must hold exactly the
    // bytes it held then. Versions count writes since creation, and both
    // simulators perform the same deterministic load; a mismatch means
    // different code (or a page the recording run's mode wrote but this
    // one did not, e.g. a signature-table page reached by a wild
    // wrong-path fetch) — fall back to direct execution.
    for (const auto &[page, version] : t.codePages) {
        const SparseMemory::PageView v = mem_.pageView(page);
        if ((v.version ? *v.version : 0) != version)
            return false;
    }
    return true;
}

void
Simulator::reloadProgram()
{
    // The code image is changing underneath the recording: a replay could
    // decode different bytes than the recorded run executed.
    if (cfg_.traceRecorder)
        cfg_.traceRecorder->markExternalMutation();
    program_.loadInto(mem_);
    if (store_) {
        // The table build is shared by refcount with snapshots and
        // sibling forks, and the attached validator references this
        // exact store: rebuilding a shared build would corrupt every
        // fork. Dynamic linking therefore requires an owned build.
        REV_ASSERT(store_.use_count() == 1,
                   "reloadProgram() on a simulator sharing its table "
                   "build with snapshots/forks");
        store_->rebuild(program_);
        store_->loadInto(mem_);
    }
    validator_->refreshTables();
    if (cfg_.pageShadowing)
        pristine_ = mem_.clone();
}

stats::StatSet
Simulator::stats() const
{
    stats::StatSet set;
    stats::StatGroup group("sim");
    memsys_.addStats(group);
    core_->predictor().addStats(group);
    validator_->addStats(group);
    group.snapshot(set);

    validator_->snapshotStats(set, "sim");
    return set;
}

void
Simulator::dumpStats(std::ostream &os) const
{
    stats().dump(os);
}

void
Simulator::resetStats()
{
    memsys_.resetStats();
    validator_->resetStats();
}

SimResult
Simulator::run()
{
    SimResult res;
    res.run = core_->run();
    if (cfg_.traceRecorder) {
        if (res.run.violation)
            cfg_.traceRecorder->markViolation();
        cfg_.traceRecorder->finish(core_->machine());
    }
    // A finished execution seals the measurement session; a quantum that
    // merely exhausted its instruction budget (warm-up/steady-state
    // phases) leaves the session open for the next run().
    if (res.run.halted || res.run.violation)
        validator_->sealMeasurement();
    res.validation = validator_->commonStats();
    if (revEngine_)
        res.rev = revEngine_->stats();
    if (lofatEngine_)
        res.lofat = lofatEngine_->stats();
    if (store_)
        res.sigTableBytes = store_->totalTableBytes();
    res.scFillAccesses = memsys_.accesses(mem::AccessType::ScFill);
    res.scFillL1Misses = memsys_.l1Misses(mem::AccessType::ScFill);
    res.scFillL2Misses = memsys_.l2Misses(mem::AccessType::ScFill);

    if (cfg_.pageShadowing && res.run.violation) {
        // Strict R5 (Sec. IV.A): the compromised execution's shadow pages
        // are never mapped in; the original state survives intact.
        mem_ = pristine_.clone();
        res.memoryRolledBack = true;
    }
    return res;
}

} // namespace rev::core
