#include "core/costmodel.hpp"

namespace rev::core
{

CostEstimate
estimateCost(const CostInputs &in)
{
    const double sc_kb = static_cast<double>(in.scBytes) / 1024.0;

    CostEstimate out;
    out.revAreaMm2 = sc_kb * in.scAreaMm2PerKB + in.chgAreaMm2 +
                     in.sagCmpAreaMm2 + in.postCommitAreaMm2;
    out.revPowerW = sc_kb * in.scPowerWPerKB + in.chgPowerW +
                    in.sagCmpPowerW + in.postCommitPowerW;
    if (!in.shareCryptoWithCore) {
        out.revAreaMm2 += in.decryptAreaMm2;
        out.revPowerW += in.decryptPowerW;
    }

    out.coreAreaOverhead = out.revAreaMm2 / in.coreAreaMm2;
    out.corePowerOverhead = out.revPowerW / in.corePowerW;
    out.chipPowerOverhead =
        out.revPowerW / (in.corePowerW + in.uncorePowerW);
    return out;
}

} // namespace rev::core
