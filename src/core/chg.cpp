#include "core/chg.hpp"

#include <vector>

#include "sig/table.hpp"

namespace rev::core
{

Chg::Chg(const SparseMemory &mem, const ChgConfig &cfg)
    : mem_(mem), cfg_(cfg)
{
}

u32
Chg::digest(Addr start, Addr term, Addr end)
{
    const Key key{start, term};
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    ++blocksHashed_;
    std::vector<u8> bytes(end - start);
    mem_.readBytes(start, bytes.data(), bytes.size());
    const u32 h = sig::bbHashBytes(bytes.data(), bytes.size(), start, term,
                                   cfg_.hashRounds);
    cache_.emplace(key, h);
    return h;
}

void
Chg::addStats(stats::StatGroup &group) const
{
    group.add("chg.blocks_hashed", &blocksHashed_);
    group.add("chg.flushes", &flushes_);
}

} // namespace rev::core
