#include "core/shadow.hpp"

namespace rev::core
{

bool
ShadowAddressSpace::isShadowed(Addr addr) const
{
    return shadow_.count(addr >> kPageShift) != 0;
}

ShadowAddressSpace::Page &
ShadowAddressSpace::shadowPage(Addr addr)
{
    auto &slot = shadow_[addr >> kPageShift];
    if (!slot) {
        // Copy-on-write: seed the shadow with the original content.
        slot = std::make_unique<Page>();
        base_.readBytes((addr >> kPageShift) << kPageShift, slot->data(),
                        kPageSize);
    }
    return *slot;
}

u8
ShadowAddressSpace::read8(Addr addr) const
{
    auto it = shadow_.find(addr >> kPageShift);
    if (it != shadow_.end())
        return (*it->second)[addr & (kPageSize - 1)];
    return base_.read8(addr);
}

void
ShadowAddressSpace::write8(Addr addr, u8 value)
{
    shadowPage(addr)[addr & (kPageSize - 1)] = value;
}

u64
ShadowAddressSpace::read64(Addr addr) const
{
    u64 v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | read8(addr + i);
    return v;
}

void
ShadowAddressSpace::write64(Addr addr, u64 value)
{
    for (int i = 0; i < 8; ++i)
        write8(addr + i, static_cast<u8>(value >> (8 * i)));
}

void
ShadowAddressSpace::readBytes(Addr addr, u8 *out, std::size_t len) const
{
    for (std::size_t i = 0; i < len; ++i)
        out[i] = read8(addr + i);
}

void
ShadowAddressSpace::writeBytes(Addr addr, const u8 *data, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        write8(addr + i, data[i]);
}

void
ShadowAddressSpace::commit()
{
    for (auto &[page_no, page] : shadow_)
        base_.writeBytes(page_no << kPageShift, page->data(), kPageSize);
    shadow_.clear();
    ++commits_;
}

void
ShadowAddressSpace::discard()
{
    shadow_.clear();
    ++discards_;
}

} // namespace rev::core
