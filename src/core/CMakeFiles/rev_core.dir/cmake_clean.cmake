file(REMOVE_RECURSE
  "CMakeFiles/rev_core.dir/costmodel.cpp.o"
  "CMakeFiles/rev_core.dir/costmodel.cpp.o.d"
  "CMakeFiles/rev_core.dir/shadow.cpp.o"
  "CMakeFiles/rev_core.dir/shadow.cpp.o.d"
  "CMakeFiles/rev_core.dir/simulator.cpp.o"
  "CMakeFiles/rev_core.dir/simulator.cpp.o.d"
  "librev_core.a"
  "librev_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
