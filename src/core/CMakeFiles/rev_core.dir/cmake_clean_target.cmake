file(REMOVE_RECURSE
  "librev_core.a"
)
