# Empty dependencies file for rev_core.
# This may be replaced when dependencies are built.
