/**
 * @file
 * Analytic area / power model of the REV hardware (Sec. VI).
 *
 * The paper estimates the additions with CACTI 6.0 (SC, registers,
 * latches, comparators, write-queue extension RAM) and extrapolates the
 * CHG from published 180 nm SHA-3 implementations to 32 nm, reporting:
 * ~7.2% dynamic power overhead over a base core with private L1/L2, ~8%
 * core area overhead, and <5.5% power at the chip level once a shared L3
 * and I/O pads are included. This model reproduces that arithmetic and
 * exposes the inputs so sensitivity studies (e.g., SC size) are possible.
 */

#ifndef REV_CORE_COSTMODEL_HPP
#define REV_CORE_COSTMODEL_HPP

#include "common/types.hpp"

namespace rev::core
{

/** Inputs to the Sec. VI estimates. */
struct CostInputs
{
    // Base core (from McPAT, 32 nm, 3 GHz, private L1+L2).
    double coreAreaMm2 = 18.0;
    double corePowerW = 9.0;

    // Uncore contribution when a shared L3 + I/O pads are included.
    double uncorePowerW = 3.6;

    // REV structures.
    u64 scBytes = 32 * 1024;
    double scAreaMm2PerKB = 0.009;  ///< CACTI-style SRAM density
    double scPowerWPerKB = 0.0106;  ///< dynamic power at 3 GHz

    double chgAreaMm2 = 0.82;       ///< 5-round CubeHash pipe @32 nm
    double chgPowerW = 0.24;

    double sagCmpAreaMm2 = 0.12;    ///< base/limit/key regs + comparators
    double sagCmpPowerW = 0.03;

    double postCommitAreaMm2 = 0.18; ///< ROB / store-queue extension RAM
    double postCommitPowerW = 0.022;

    double decryptAreaMm2 = 0.14;   ///< AES pipe (0 when shared with core)
    double decryptPowerW = 0.018;
    bool shareCryptoWithCore = false;
};

/** Derived overheads. */
struct CostEstimate
{
    double revAreaMm2 = 0;
    double revPowerW = 0;
    double coreAreaOverhead = 0; ///< fraction of base core area
    double corePowerOverhead = 0;
    double chipPowerOverhead = 0; ///< with shared L3 + I/O included
};

/** Evaluate the Sec. VI arithmetic. */
CostEstimate estimateCost(const CostInputs &in);

} // namespace rev::core

#endif // REV_CORE_COSTMODEL_HPP
