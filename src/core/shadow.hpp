/**
 * @file
 * Page shadowing (Sec. IV.A): the stricter alternative for Requirement
 * R5 that defers ALL changes to the system state until the entire
 * execution has been authenticated.
 *
 * "Initially, the original pages accessed by the program are mapped to a
 *  set of shadow pages with identical initial content. All memory updates
 *  are made on the shadow pages during execution and when the entire
 *  execution is authenticated, the shadow pages are mapped in as the
 *  program's original pages. Also, while execution is going on, no output
 *  operation (that is, DMA) is allowed out of a shadow page." [42]
 *
 * ShadowAddressSpace implements exactly that contract over a base
 * SparseMemory: writes copy-on-write into private shadow pages; reads see
 * the shadow when one exists; commit() folds shadows back into the
 * original; discard() drops them; dmaAllowed() is false for shadowed
 * pages until commit.
 */

#ifndef REV_CORE_SHADOW_HPP
#define REV_CORE_SHADOW_HPP

#include <memory>
#include <unordered_map>

#include "common/sparse_memory.hpp"
#include "common/stats.hpp"

namespace rev::core
{

/**
 * Copy-on-write view over a base memory.
 */
class ShadowAddressSpace
{
  public:
    static constexpr unsigned kPageShift = SparseMemory::kPageShift;
    static constexpr u64 kPageSize = SparseMemory::kPageSize;

    /** @param base The original memory; stays untouched until commit(). */
    explicit ShadowAddressSpace(SparseMemory &base) : base_(base) {}

    // --- the machine-facing interface (mirrors SparseMemory) --------------

    u8 read8(Addr addr) const;
    void write8(Addr addr, u8 value);
    u64 read64(Addr addr) const;
    void write64(Addr addr, u64 value);
    void readBytes(Addr addr, u8 *out, std::size_t len) const;
    void writeBytes(Addr addr, const u8 *data, std::size_t len);

    // --- the OS-facing transaction interface -------------------------------

    /** Pages currently shadowed (dirtied since the last commit/discard). */
    std::size_t shadowedPages() const { return shadow_.size(); }

    /** True iff @p addr's page has been written during this epoch. */
    bool isShadowed(Addr addr) const;

    /**
     * DMA out of a shadowed page is disallowed until the execution that
     * produced it has been authenticated (Sec. IV.A).
     */
    bool dmaAllowed(Addr addr) const { return !isShadowed(addr); }

    /**
     * The execution authenticated: map every shadow page in as the
     * original ("atomically", from the program's point of view).
     */
    void commit();

    /** The execution failed authentication: drop every shadow page. */
    void discard();

    u64 commits() const { return commits_; }
    u64 discards() const { return discards_; }

  private:
    using Page = std::array<u8, kPageSize>;

    /** Get (copy-on-write allocating) the shadow page of @p addr. */
    Page &shadowPage(Addr addr);

    SparseMemory &base_;
    std::unordered_map<u64, std::unique_ptr<Page>> shadow_;
    stats::Counter commits_, discards_;
};

} // namespace rev::core

#endif // REV_CORE_SHADOW_HPP
