# Empty dependencies file for rev_verifier.
# This may be replaced when dependencies are built.
