file(REMOVE_RECURSE
  "librev_verifier.a"
)
