file(REMOVE_RECURSE
  "CMakeFiles/rev_verifier.dir/loadgen.cpp.o"
  "CMakeFiles/rev_verifier.dir/loadgen.cpp.o.d"
  "CMakeFiles/rev_verifier.dir/service.cpp.o"
  "CMakeFiles/rev_verifier.dir/service.cpp.o.d"
  "librev_verifier.a"
  "librev_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rev_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
