/**
 * @file
 * Transport: how a prover's measurement bytes reach the verifier
 * service.
 *
 * PR 6 hard-wired one transport — the in-process SPSC ByteRing. This
 * header lifts that choice behind an interface so a session can run
 * over real IPC without the service or the StreamVerifier noticing:
 *
 *  - RingTransport: the existing in-memory ByteRing, unchanged
 *    semantics (lock-free SPSC, back-pressure by accepting fewer
 *    bytes). watchFd() is -1: the service schedules these sessions
 *    through its doorbell ready-queue.
 *  - SocketTransport: a nonblocking Unix-domain socketpair carrying
 *    *length-framed* RVMS chunks. The prover side frames each send()
 *    into [u32 LE length][payload] records (one pending frame is
 *    buffered locally, so back-pressure is bounded, not unbounded
 *    queueing); the verifier side reassembles partial reads with a
 *    FrameDecoder and hands the service a plain byte stream. watchFd()
 *    exposes the verifier-side fd for the service's epoll loop.
 *
 * Framing rules (the FrameDecoder contract):
 *  - A frame is 4 bytes little-endian payload length, then exactly
 *    that many payload bytes. Valid lengths are 1..kMaxFramePayload.
 *  - The decoder is *total*: arbitrary bytes never crash it. A length
 *    prefix outside the valid range marks the stream corrupt() — the
 *    service renders a malformed-stream verdict — and all further
 *    input is discarded (so a corrupt session cannot back-pressure its
 *    prover forever, and cannot grow the reassembly buffer).
 *  - EOF in the middle of a frame is a *disconnect*, not corruption:
 *    the complete payload decoded so far stands, and the session
 *    adjudicates as a truncated stream — byte-identical to a ring
 *    whose prover died mid-record.
 *
 * Thread contract (mirrors ByteRing): send()/closeSend() are called by
 * the session's single prover thread; recv()/finished()/corrupt() by
 * the one worker currently holding the session. peakBytes() may be
 * read by the controller after the session settles.
 */

#ifndef REV_VERIFIER_TRANSPORT_HPP
#define REV_VERIFIER_TRANSPORT_HPP

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "verifier/ring.hpp"

namespace rev::verifier
{

/** Largest payload one frame may carry on a socket transport. */
inline constexpr std::size_t kMaxFramePayload = 1u << 16;

/** Bytes of length prefix per frame. */
inline constexpr std::size_t kFrameHeaderBytes = 4;

/** Session transport between one prover and the verifier service. */
class Transport
{
  public:
    virtual ~Transport() = default;

    // --- prover side ----------------------------------------------------
    /** Append up to @p n stream bytes; returns bytes accepted
     *  (back-pressure when fewer). Accepted bytes are guaranteed to be
     *  delivered in order unless the transport is torn down. */
    virtual std::size_t send(const u8 *data, std::size_t n) = 0;

    /** No further bytes will be sent (idempotent). */
    virtual void closeSend() = 0;

    // --- verifier side --------------------------------------------------
    /** Drain up to @p max decoded stream bytes into @p out; 0 = nothing
     *  available right now. */
    virtual std::size_t recv(u8 *out, std::size_t max) = 0;

    /** Decoded bytes known to be waiting (0 is allowed for transports
     *  whose readiness the event loop tracks through watchFd()). */
    virtual std::size_t readable() const = 0;

    /** Close-of-stream seen and every decoded byte delivered. */
    virtual bool finished() const = 0;

    /** The transport framing itself was violated (never set by honest
     *  truncation — see finished()). */
    virtual bool corrupt() const { return false; }

    /** Peak bytes this session buffered in transit (memory accounting;
     *  feeds SessionReport.peakBytes). */
    virtual std::size_t peakBytes() const = 0;

    /** Readiness fd for the service's epoll loop, or -1 when the
     *  transport signals through the service doorbell instead. */
    virtual int watchFd() const { return -1; }
};

/** The PR 6 in-memory transport: a thin adapter over ByteRing. */
class RingTransport final : public Transport
{
  public:
    explicit RingTransport(std::size_t capacity) : ring_(capacity) {}

    std::size_t send(const u8 *data, std::size_t n) override
    {
        return ring_.write(data, n);
    }
    void closeSend() override { ring_.closeWrite(); }

    std::size_t recv(u8 *out, std::size_t max) override
    {
        return ring_.read(out, max);
    }
    std::size_t readable() const override { return ring_.readable(); }
    bool finished() const override
    {
        return ring_.writeClosed() && ring_.readable() == 0;
    }
    std::size_t peakBytes() const override { return ring_.highWater(); }

    ByteRing &ring() { return ring_; }

  private:
    ByteRing ring_;
};

/**
 * Reassembles length-framed transport bytes into the plain RVMS byte
 * stream. Total on arbitrary input; see the framing rules above.
 */
class FrameDecoder
{
  public:
    /** Append raw transport bytes (partial reads welcome). Input after
     *  corruption is discarded. */
    void push(const u8 *data, std::size_t n);

    /** Drain up to @p max decoded payload bytes into @p out. */
    std::size_t take(u8 *out, std::size_t max);

    /** Sender closed: a partial trailing frame becomes honest
     *  truncation (its decoded prefix stands, the torn tail is lost —
     *  exactly what a mid-record disconnect means). */
    void markEof() { eof_ = true; }

    bool corrupt() const { return corrupt_; }
    bool eofSeen() const { return eof_; }
    std::size_t pending() const { return payload_.size() - payloadOff_; }

    /** Reassembly-buffer occupancy high-water (memory accounting). */
    std::size_t peakBuffered() const { return peak_; }

    /** Reference encoder: frame @p n payload bytes onto @p out,
     *  splitting at kMaxFramePayload. */
    static void encodeFrame(std::vector<u8> *out, const u8 *payload,
                            std::size_t n);

  private:
    void parse();

    std::vector<u8> raw_; ///< undecoded transport bytes
    std::size_t rawOff_ = 0;
    std::vector<u8> payload_; ///< decoded stream bytes not yet taken
    std::size_t payloadOff_ = 0;
    std::size_t need_ = 0; ///< payload bytes owed by the current frame
    std::size_t peak_ = 0;
    bool corrupt_ = false;
    bool eof_ = false;
};

/**
 * Unix-domain socketpair transport with length-framed RVMS chunks.
 * Nonblocking on both ends: a full kernel buffer back-pressures the
 * prover (send() accepts 0), partial reads reassemble through the
 * FrameDecoder. Only available on POSIX hosts; the service falls back
 * to RingTransport elsewhere.
 */
class SocketTransport final : public Transport
{
  public:
    /** @param bufBytes Requested kernel socket buffer size (the
     *  back-pressure horizon, analogous to the ring capacity). */
    explicit SocketTransport(std::size_t bufBytes = kDefaultRingBytes);
    ~SocketTransport() override;

    SocketTransport(const SocketTransport &) = delete;
    SocketTransport &operator=(const SocketTransport &) = delete;

    std::size_t send(const u8 *data, std::size_t n) override;
    void closeSend() override;

    std::size_t recv(u8 *out, std::size_t max) override;
    std::size_t readable() const override { return rx_.pending(); }
    bool finished() const override;
    bool corrupt() const override { return rx_.corrupt(); }
    std::size_t peakBytes() const override;
    int watchFd() const override { return rfd_; }

    /** True when socketpair() could be created (health check). */
    bool valid() const { return rfd_ >= 0 && wfd_ >= 0; }

  private:
    /** Try to push the buffered frame remainder into the socket.
     *  @return true once nothing is pending. */
    bool flushPending();

    int wfd_ = -1; ///< prover end
    int rfd_ = -1; ///< verifier end (epoll-registered)

    // Prover-side: at most one partially-written frame.
    std::vector<u8> pending_;
    std::size_t pendingOff_ = 0;
    bool sendClosed_ = false;

    // Verifier-side reassembly.
    FrameDecoder rx_;
    bool eof_ = false;

    std::atomic<std::size_t> peak_{0}; ///< cross-thread max of both sides
};

} // namespace rev::verifier

#endif // REV_VERIFIER_TRANSPORT_HPP
