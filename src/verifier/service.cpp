#include "verifier/service.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hpp"

#if defined(__linux__)
#define REV_VERIFIER_EPOLL 1
#include <cerrno>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>
#endif

namespace rev::verifier
{

const char *
transportName(TransportKind kind)
{
    switch (kind) {
    case TransportKind::Memory:
        return "memory";
    case TransportKind::Socket:
        return "socket";
    }
    return "?";
}

VerifierService::VerifierService(const ServiceOptions &opts)
{
    if (opts.dedupEntries != 0)
        cache_ = std::make_unique<VerifiedUnitCache>(opts.dedupEntries);

#if REV_VERIFIER_EPOLL
    // Escape hatch so the condvar fallback stays testable on epoll
    // hosts (sockets degrade to rings under it).
    const char *noEpoll = std::getenv("REV_VERIFIER_NO_EPOLL");
    const bool wantEpoll =
        noEpoll == nullptr || *noEpoll == '\0' || *noEpoll == '0';
    if (wantEpoll)
        epollFd_ = epoll_create1(EPOLL_CLOEXEC);
    doorbellFd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    stopFd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epollFd_ >= 0 && doorbellFd_ >= 0 && stopFd_ >= 0) {
        epollMode_ = true;
        epoll_event ev{};
        // The doorbell is level-triggered: if rings queue while every
        // worker is busy, the next epoll_wait still sees it readable.
        ev.events = EPOLLIN;
        ev.data.ptr = &doorbellFd_;
        epoll_ctl(epollFd_, EPOLL_CTL_ADD, doorbellFd_, &ev);
        // The stop fd is never read, so once written every worker's
        // epoll_wait keeps returning it until they all exit.
        ev.events = EPOLLIN;
        ev.data.ptr = &stopFd_;
        epoll_ctl(epollFd_, EPOLL_CTL_ADD, stopFd_, &ev);
    }
#endif

    const unsigned workers = std::max(1u, opts.workers);
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

VerifierService::~VerifierService()
{
    stop_.store(true, std::memory_order_release);
#if REV_VERIFIER_EPOLL
    if (epollMode_) {
        const u64 one = 1;
        [[maybe_unused]] ssize_t w = write(stopFd_, &one, sizeof(one));
    }
#endif
    readyCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
#if REV_VERIFIER_EPOLL
    if (epollFd_ >= 0)
        close(epollFd_);
    if (doorbellFd_ >= 0)
        close(doorbellFd_);
    if (stopFd_ >= 0)
        close(stopFd_);
#endif
}

u64
VerifierService::addSession(const validate::RefStore &refs,
                            std::unique_ptr<Transport> transport)
{
    auto s = std::make_unique<Session>();
    s->transport = std::move(transport);
    s->verifier =
        std::make_unique<validate::StreamVerifier>(refs, cache_.get());
    Session *raw = s.get();
    u64 id;
    {
        std::lock_guard<std::mutex> lock(sessionsLock_);
        id = sessions_.size();
        s->id = id;
        s->report.id = id;
        sessions_.push_back(std::move(s));
    }
    opened_.fetch_add(1, std::memory_order_relaxed);

#if REV_VERIFIER_EPOLL
    const int fd = raw->transport->watchFd();
    if (epollMode_ && fd >= 0) {
        // One-shot readiness: exactly one worker wakes per event, owns
        // the session while draining, and re-arms afterwards.
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
        ev.data.ptr = raw;
        if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) == 0)
            raw->watched = true;
    }
#else
    (void)raw;
#endif
    return id;
}

u64
VerifierService::openSession(const validate::RefStore &refs,
                             TransportKind kind, std::size_t ring_bytes)
{
    std::unique_ptr<Transport> t;
    if (kind == TransportKind::Socket) {
        auto sock = std::make_unique<SocketTransport>(ring_bytes);
        if (epollMode_ && sock->valid())
            t = std::move(sock);
        else
            warn("verifier: socket transport unavailable, "
                 "falling back to memory ring");
    }
    if (!t)
        t = std::make_unique<RingTransport>(ring_bytes);
    return addSession(refs, std::move(t));
}

u64
VerifierService::openSessionWith(const validate::RefStore &refs,
                                 std::unique_ptr<Transport> transport)
{
    const int fd = transport->watchFd();
    if (fd >= 0 && !epollMode_)
        fatal("verifier: fd-backed transports need the epoll event loop");
    return addSession(refs, std::move(transport));
}

VerifierService::Session *
VerifierService::sessionPtr(u64 id) const
{
    std::lock_guard<std::mutex> lock(sessionsLock_);
    return sessions_[id].get();
}

std::size_t
VerifierService::offer(u64 session, const u8 *data, std::size_t n)
{
    Session *s = sessionPtr(session);
    if (s->done.load(std::memory_order_acquire))
        return n; // verdict latched; swallow so the prover can finish
    Transport *t = s->transport.get();
    const std::size_t accepted = t->send(data, n);
    if (accepted != 0 && t->watchFd() < 0)
        notify(s); // socket sessions wake workers through epoll itself
    return accepted;
}

void
VerifierService::closeSession(u64 session)
{
    Session *s = sessionPtr(session);
    s->closedAt = Clock::now();
    s->closeSeen.store(true, std::memory_order_seq_cst);
    s->transport->closeSend();
    closed_.fetch_add(1, std::memory_order_relaxed);
    if (s->transport->watchFd() < 0)
        notify(s);
    // Dekker pairing with finishSession(): whichever of close/finish
    // runs second observes the other's flag and counts the session.
    if (s->done.load(std::memory_order_seq_cst))
        countDrained(s);
}

void
VerifierService::countDrained(Session *s)
{
    if (s->counted.exchange(true, std::memory_order_acq_rel))
        return;
    {
        // Bump under doneLock_ so drain() cannot test its predicate
        // between the increment and the notify (lost wakeup).
        std::lock_guard<std::mutex> done(doneLock_);
        drained_.fetch_add(1, std::memory_order_release);
    }
    doneCv_.notify_all();
}

void
VerifierService::notify(Session *s)
{
    // One queue slot per session: first notifier wins, the worker that
    // pops the session clears the flag before draining and re-checks the
    // transport afterwards, so bytes arriving during the drain are never
    // lost.
    if (s->queued.exchange(true, std::memory_order_acq_rel))
        return;
    {
        std::lock_guard<std::mutex> lock(readyLock_);
        ready_.push_back(s);
    }
#if REV_VERIFIER_EPOLL
    if (epollMode_) {
        const u64 one = 1;
        [[maybe_unused]] ssize_t w = write(doorbellFd_, &one, sizeof(one));
        return;
    }
#endif
    readyCv_.notify_one();
}

void
VerifierService::workerLoop()
{
#if REV_VERIFIER_EPOLL
    if (epollMode_) {
        epoll_event evs[64];
        for (;;) {
            const int n = epoll_wait(epollFd_, evs, 64, -1);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return;
            }
            for (int i = 0; i < n; ++i) {
                void *p = evs[i].data.ptr;
                if (p == &stopFd_)
                    return; // never consumed: all workers see it
                if (p == &doorbellFd_) {
                    u64 cnt;
                    [[maybe_unused]] ssize_t r =
                        read(doorbellFd_, &cnt, sizeof(cnt));
                    for (;;) {
                        Session *s = nullptr;
                        {
                            std::lock_guard<std::mutex> lock(readyLock_);
                            if (ready_.empty())
                                break;
                            s = ready_.front();
                            ready_.pop_front();
                        }
                        s->queued.store(false, std::memory_order_release);
                        service(s);
                        // Re-notify if bytes (or the close) raced in
                        // while this worker held the session.
                        Transport *t = s->transport.get();
                        if (!s->done.load(std::memory_order_acquire) &&
                            t != nullptr &&
                            (t->readable() != 0 || t->finished()))
                            notify(s);
                    }
                    continue;
                }
                Session *s = static_cast<Session *>(p);
                if (service(s)) {
                    // EPOLLONESHOT consumed: re-arm for the next bytes.
                    epoll_event ev{};
                    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
                    ev.data.ptr = s;
                    epoll_ctl(epollFd_, EPOLL_CTL_MOD,
                              s->transport->watchFd(), &ev);
                }
            }
        }
    }
#endif
    // Fallback hosts: the PR 6 condvar ready queue (memory transports
    // only; openSession degrades sockets to rings here).
    for (;;) {
        Session *s = nullptr;
        {
            std::unique_lock<std::mutex> lock(readyLock_);
            readyCv_.wait(lock, [&] {
                return stop_.load(std::memory_order_acquire) ||
                       !ready_.empty();
            });
            if (ready_.empty())
                return; // stop requested and queue drained
            s = ready_.front();
            ready_.pop_front();
        }
        s->queued.store(false, std::memory_order_release);
        service(s);
        Transport *t = s->transport.get();
        if (!s->done.load(std::memory_order_acquire) && t != nullptr &&
            (t->readable() != 0 || t->finished()))
            notify(s);
    }
}

bool
VerifierService::service(Session *s)
{
    std::lock_guard<std::mutex> lock(s->work);
    Transport *t = s->transport.get();
    if (t == nullptr)
        return false; // settled and torn down

    u8 chunk[16384];
    if (s->done.load(std::memory_order_relaxed)) {
        // Verdict already rendered: keep draining so a prover that is
        // still feeding can finish (its bytes are discarded).
        while (t->recv(chunk, sizeof(chunk)) != 0) {
        }
        if (t->finished() || (t->corrupt() &&
                              s->closeSeen.load(std::memory_order_acquire))) {
            s->report.peakBytes = t->peakBytes();
            s->transport.reset(); // fds close; epoll deregisters
            return false;
        }
        return t->watchFd() >= 0;
    }

    validate::StreamVerifier &v = *s->verifier;
    for (std::size_t n; (n = t->recv(chunk, sizeof(chunk))) != 0;) {
        if (!v.feed(chunk, n))
            break; // verdict latched; the drain continues next pass
    }

    if (!v.done()) {
        if (t->corrupt()) {
            v.abortMalformed(); // framing violated: adjudicate now
        } else if (!t->finished()) {
            return t->watchFd() >= 0; // wait for more bytes
        } else {
            v.finish(); // stream closed mid-session: truncation
        }
    }

    finishSession(s, t);
    // A socket prover may still be feeding a latched session: keep the
    // fd armed until EOF so its back-pressure eventually releases.
    if (t == s->transport.get() && s->transport != nullptr)
        return t->watchFd() >= 0 && !t->finished();
    return false;
}

void
VerifierService::finishSession(Session *s, Transport *t)
{
    validate::StreamVerifier &v = *s->verifier;

    // A session that fails before its close still reports zero
    // latency: the verdict predates the close.
    if (s->closeSeen.load(std::memory_order_acquire)) {
        const double lat =
            std::chrono::duration<double>(Clock::now() - s->closedAt)
                .count();
        s->report.latencySeconds = std::max(0.0, lat);
    }
    s->report.verdict = v.verdict();
    s->report.bytes = v.bytesConsumed();
    s->report.peakBytes = t->peakBytes();
    s->report.dedupHits = v.dedupHits();
    s->report.dedupMisses = v.dedupMisses();

    // Release the decode state now — a 100k-session soak must not hold
    // every finished session's buffers. The transport goes too once the
    // prover is known to be done with it (no offer() after close).
    s->verifier.reset();
    if (t->finished() && s->closeSeen.load(std::memory_order_acquire))
        s->transport.reset();

    adjudicated_.fetch_add(1, std::memory_order_relaxed);
    s->done.store(true, std::memory_order_seq_cst);
    if (s->closeSeen.load(std::memory_order_seq_cst))
        countDrained(s);
}

void
VerifierService::drain()
{
    std::unique_lock<std::mutex> lock(doneLock_);
    doneCv_.wait(lock, [&] {
        return drained_.load(std::memory_order_acquire) >=
               closed_.load(std::memory_order_acquire);
    });
}

std::vector<SessionReport>
VerifierService::reports() const
{
    std::lock_guard<std::mutex> lock(sessionsLock_);
    std::vector<SessionReport> out;
    out.reserve(sessions_.size());
    for (const auto &s : sessions_) {
        if (s->done.load(std::memory_order_acquire)) {
            out.push_back(s->report);
            continue;
        }
        // Unsettled session (service torn down early): snapshot live.
        std::lock_guard<std::mutex> work(s->work);
        SessionReport r = s->report;
        if (s->verifier) {
            r.verdict = s->verifier->verdict();
            r.bytes = s->verifier->bytesConsumed();
            r.dedupHits = s->verifier->dedupHits();
            r.dedupMisses = s->verifier->dedupMisses();
        }
        if (s->transport)
            r.peakBytes = s->transport->peakBytes();
        out.push_back(std::move(r));
    }
    return out;
}

UnitCacheStats
VerifierService::cacheStats() const
{
    return cache_ ? cache_->stats() : UnitCacheStats{};
}

} // namespace rev::verifier
