#include "verifier/service.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hpp"

#if defined(__linux__)
#define REV_VERIFIER_EPOLL 1
#include <cerrno>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>
#endif

namespace rev::verifier
{

const char *
transportName(TransportKind kind)
{
    switch (kind) {
    case TransportKind::Memory:
        return "memory";
    case TransportKind::Socket:
        return "socket";
    }
    return "?";
}

VerifierService::VerifierService(const ServiceOptions &opts)
{
    if (opts.dedupEntries != 0)
        cache_ = std::make_unique<VerifiedUnitCache>(opts.dedupEntries);

#if REV_VERIFIER_EPOLL
    // Escape hatch so the condvar fallback stays testable on epoll
    // hosts (sockets degrade to rings under it).
    const char *noEpoll = std::getenv("REV_VERIFIER_NO_EPOLL");
    const bool wantEpoll =
        noEpoll == nullptr || *noEpoll == '\0' || *noEpoll == '0';
    if (wantEpoll)
        epollFd_ = epoll_create1(EPOLL_CLOEXEC);
    doorbellFd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    stopFd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epollFd_ >= 0 && doorbellFd_ >= 0 && stopFd_ >= 0) {
        epollMode_ = true;
        epoll_event ev{};
        // The doorbell is level-triggered: if rings queue while every
        // worker is busy, the next epoll_wait still sees it readable.
        ev.events = EPOLLIN;
        ev.data.ptr = &doorbellFd_;
        epoll_ctl(epollFd_, EPOLL_CTL_ADD, doorbellFd_, &ev);
        // The stop fd is never read, so once written every worker's
        // epoll_wait keeps returning it until they all exit.
        ev.events = EPOLLIN;
        ev.data.ptr = &stopFd_;
        epoll_ctl(epollFd_, EPOLL_CTL_ADD, stopFd_, &ev);
    }
#endif

    const unsigned workers = std::max(1u, opts.workers);
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

VerifierService::~VerifierService()
{
    stop_.store(true, std::memory_order_release);
#if REV_VERIFIER_EPOLL
    if (epollMode_) {
        const u64 one = 1;
        [[maybe_unused]] ssize_t w = write(stopFd_, &one, sizeof(one));
    }
#endif
    readyCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
#if REV_VERIFIER_EPOLL
    if (epollFd_ >= 0)
        close(epollFd_);
    if (doorbellFd_ >= 0)
        close(doorbellFd_);
    if (stopFd_ >= 0)
        close(stopFd_);
#endif
}

u64
VerifierService::addSession(const validate::RefStore &refs,
                            std::unique_ptr<Transport> transport)
{
    auto s = std::make_unique<Session>();
    s->transport = std::move(transport);
    s->verifier =
        std::make_unique<validate::StreamVerifier>(refs, cache_.get());
    Session *raw = s.get();
    u64 id;
    {
        std::lock_guard<std::mutex> lock(sessionsLock_);
        id = sessions_.size();
        s->id = id;
        s->report.id = id;
        sessions_.push_back(std::move(s));
    }
    opened_.fetch_add(1, std::memory_order_relaxed);

#if REV_VERIFIER_EPOLL
    const int fd = raw->transport->watchFd();
    if (epollMode_ && fd >= 0) {
        // One-shot readiness: exactly one worker wakes per event, owns
        // the session while draining, and re-arms afterwards.
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
        ev.data.ptr = raw;
        if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) == 0) {
            raw->watched.store(true, std::memory_order_relaxed);
        } else {
            // ADD can fail under fd/memory pressure (ENOMEM/ENOSPC) at
            // soak scale. The session must not go dark: unwatched fd
            // sessions are scheduled through the doorbell instead —
            // offer() and closeSession() notify() for them.
            warn("verifier: epoll ADD failed for session fd, "
                 "falling back to doorbell scheduling");
        }
    }
#else
    (void)raw;
#endif
    return id;
}

u64
VerifierService::openSession(const validate::RefStore &refs,
                             TransportKind kind, std::size_t ring_bytes)
{
    std::unique_ptr<Transport> t;
    if (kind == TransportKind::Socket) {
        auto sock = std::make_unique<SocketTransport>(ring_bytes);
        if (epollMode_ && sock->valid())
            t = std::move(sock);
        else
            warn("verifier: socket transport unavailable, "
                 "falling back to memory ring");
    }
    if (!t)
        t = std::make_unique<RingTransport>(ring_bytes);
    return addSession(refs, std::move(t));
}

u64
VerifierService::openSessionWith(const validate::RefStore &refs,
                                 std::unique_ptr<Transport> transport)
{
    const int fd = transport->watchFd();
    if (fd >= 0 && !epollMode_)
        fatal("verifier: fd-backed transports need the epoll event loop");
    return addSession(refs, std::move(transport));
}

VerifierService::Session *
VerifierService::sessionPtr(u64 id) const
{
    std::lock_guard<std::mutex> lock(sessionsLock_);
    return sessions_[id].get();
}

std::size_t
VerifierService::offer(u64 session, const u8 *data, std::size_t n)
{
    Session *s = sessionPtr(session);
    if (s->done.load(std::memory_order_acquire))
        return n; // verdict latched; swallow so the prover can finish
    // Unlocked transport access is safe on the prover path: workers
    // only reset s->transport after observing proverGone, which this
    // same thread publishes at the end of closeSession() — and the
    // session contract forbids offer() after closeSession().
    Transport *t = s->transport.get();
    const std::size_t accepted = t->send(data, n);
    // Watched sockets wake workers through epoll itself; rings and fd
    // sessions whose epoll registration failed go through the doorbell.
    if (accepted != 0 &&
        (t->watchFd() < 0 || !s->watched.load(std::memory_order_relaxed)))
        notify(s);
    return accepted;
}

void
VerifierService::closeSession(u64 session)
{
    Session *s = sessionPtr(session);
    s->closedAt = Clock::now();
    Transport *t = s->transport.get(); // safe: see offer()
    s->closeSeen.store(true, std::memory_order_seq_cst);
    t->closeSend();
    // Last prover-side transport access is done: from here on a worker
    // pass that observes this flag may tear the transport down.
    s->proverGone.store(true, std::memory_order_seq_cst);
    closed_.fetch_add(1, std::memory_order_relaxed);
    // Every close schedules one doorbell pass guaranteed to observe
    // proverGone (closeNotify's ordering argument), so even a session
    // whose fd never fires again — EOF or corruption already consumed —
    // is drained, retired, and counted.
    closeNotify(s);
    // Dekker pairing with finishSession(): whichever of close/finish
    // runs second observes the other's flag and counts the session.
    if (s->done.load(std::memory_order_seq_cst))
        countDrained(s);
}

void
VerifierService::countDrained(Session *s)
{
    if (s->counted.exchange(true, std::memory_order_acq_rel))
        return;
    {
        // Bump under doneLock_ so drain() cannot test its predicate
        // between the increment and the notify (lost wakeup).
        std::lock_guard<std::mutex> done(doneLock_);
        drained_.fetch_add(1, std::memory_order_release);
    }
    doneCv_.notify_all();
}

void
VerifierService::notify(Session *s)
{
    // One queue slot per session: first notifier wins, the worker that
    // pops the session clears the flag before draining and re-checks the
    // transport afterwards, so bytes arriving during the drain are never
    // lost.
    if (s->queued.exchange(true, std::memory_order_acq_rel))
        return;
    {
        std::lock_guard<std::mutex> lock(readyLock_);
        ready_.push_back(s);
    }
#if REV_VERIFIER_EPOLL
    if (epollMode_) {
        const u64 one = 1;
        [[maybe_unused]] ssize_t w = write(doorbellFd_, &one, sizeof(one));
        return;
    }
#endif
    readyCv_.notify_one();
}

void
VerifierService::closeNotify(Session *s)
{
    bool enqueued = false;
    {
        // Unlike notify(), take readyLock_ even when the session is
        // already queued. Two cases, both of which order the next
        // service pass after closeSession()'s proverGone store:
        //  - the queued entry is still in the deque: its pop runs under
        //    this same lock, after our unlock (mutex happens-before);
        //  - the entry was popped but `queued` not yet cleared: our
        //    seq_cst exchange precedes the worker's seq_cst clear in
        //    the coherence order, so that pass's seq_cst proverGone
        //    load (sequenced after the clear) must observe the store.
        std::lock_guard<std::mutex> lock(readyLock_);
        if (!s->queued.exchange(true, std::memory_order_seq_cst)) {
            ready_.push_back(s);
            enqueued = true;
        }
    }
    if (!enqueued)
        return;
#if REV_VERIFIER_EPOLL
    if (epollMode_) {
        const u64 one = 1;
        [[maybe_unused]] ssize_t w = write(doorbellFd_, &one, sizeof(one));
        return;
    }
#endif
    readyCv_.notify_one();
}

void
VerifierService::workerLoop()
{
#if REV_VERIFIER_EPOLL
    if (epollMode_) {
        epoll_event evs[64];
        for (;;) {
            const int n = epoll_wait(epollFd_, evs, 64, -1);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return;
            }
            for (int i = 0; i < n; ++i) {
                void *p = evs[i].data.ptr;
                if (p == &stopFd_)
                    return; // never consumed: all workers see it
                if (p == &doorbellFd_) {
                    u64 cnt;
                    [[maybe_unused]] ssize_t r =
                        read(doorbellFd_, &cnt, sizeof(cnt));
                    for (;;) {
                        Session *s = nullptr;
                        {
                            std::lock_guard<std::mutex> lock(readyLock_);
                            if (ready_.empty())
                                break;
                            s = ready_.front();
                            ready_.pop_front();
                        }
                        // seq_cst: pairs with closeNotify's exchange so
                        // a close that coalesced onto this entry is
                        // seen by the pass below.
                        s->queued.store(false, std::memory_order_seq_cst);
                        service(s);
                        // Re-notify if bytes (or the close) raced in
                        // while this worker held the session. Under
                        // s->work: another worker may be resetting the
                        // transport concurrently.
                        {
                            std::lock_guard<std::mutex> work(s->work);
                            Transport *t = s->transport.get();
                            if (!s->done.load(std::memory_order_acquire) &&
                                t != nullptr &&
                                (t->readable() != 0 || t->finished()))
                                notify(s);
                        }
                    }
                    continue;
                }
                // Watched fd session: service() re-arms the one-shot
                // registration itself, under the session lock, so the
                // re-arm can never race a concurrent transport reset.
                service(static_cast<Session *>(p));
            }
        }
    }
#endif
    // Fallback hosts: the PR 6 condvar ready queue (memory transports
    // only; openSession degrades sockets to rings here).
    for (;;) {
        Session *s = nullptr;
        {
            std::unique_lock<std::mutex> lock(readyLock_);
            readyCv_.wait(lock, [&] {
                return stop_.load(std::memory_order_acquire) ||
                       !ready_.empty();
            });
            if (ready_.empty())
                return; // stop requested and queue drained
            s = ready_.front();
            ready_.pop_front();
        }
        s->queued.store(false, std::memory_order_seq_cst);
        service(s);
        {
            std::lock_guard<std::mutex> work(s->work);
            Transport *t = s->transport.get();
            if (!s->done.load(std::memory_order_acquire) && t != nullptr &&
                (t->readable() != 0 || t->finished()))
                notify(s);
        }
    }
}

void
VerifierService::service(Session *s)
{
    std::lock_guard<std::mutex> lock(s->work);
    Transport *t = s->transport.get();
    if (t == nullptr)
        return; // settled and torn down

    // Load before draining: a seq_cst read of true synchronizes with
    // closeSession()'s store, so the drain below then sees every byte
    // and the close the prover published. A stale false only defers
    // teardown to the close-time doorbell pass, which is guaranteed to
    // load true (see closeNotify).
    const bool proverGone =
        s->proverGone.load(std::memory_order_seq_cst);

    u8 chunk[16384];
    if (s->done.load(std::memory_order_relaxed)) {
        // Verdict already rendered: keep draining so a prover that is
        // still feeding can finish (its bytes are discarded, and the
        // report stays frozen — it was published before `done`).
        while (t->recv(chunk, sizeof(chunk)) != 0) {
        }
    } else {
        validate::StreamVerifier &v = *s->verifier;
        for (std::size_t n; (n = t->recv(chunk, sizeof(chunk))) != 0;) {
            if (!v.feed(chunk, n))
                break; // verdict latched; the drain continues next pass
        }

        if (!v.done()) {
            if (t->corrupt()) {
                v.abortMalformed(); // framing violated: adjudicate now
            } else if (!t->finished()) {
                rearm(s, t); // wait for more bytes
                return;
            } else {
                v.finish(); // stream closed mid-session: truncation
            }
        }

        finishSession(s, t);
    }

    // Retire the transport once the stream is over and the prover has
    // published its close; until then keep fd sessions armed while the
    // prover can still produce events (a latched socket session drains
    // its prover's in-flight bytes so closeSend() never stalls). A
    // finished-but-not-yet-closed fd stays unarmed — re-arming would
    // busy-spin on EPOLLRDHUP — and is retired by the close pass.
    if (!maybeRetire(s, t, proverGone) && !t->finished())
        rearm(s, t);
}

void
VerifierService::rearm(Session *s, Transport *t)
{
#if REV_VERIFIER_EPOLL
    if (!epollMode_ || !s->watched.load(std::memory_order_relaxed))
        return;
    const int fd = t->watchFd();
    if (fd < 0)
        return;
    // Caller holds s->work, so the fd cannot be concurrently closed by
    // a transport reset (and thus never re-registered after reuse).
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
    ev.data.ptr = s;
    epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev);
#else
    (void)s;
    (void)t;
#endif
}

bool
VerifierService::maybeRetire(Session *s, Transport *t, bool proverGone)
{
    if (!proverGone)
        return false; // the close-time doorbell pass will retire it
    if (!t->finished() && !t->corrupt())
        return false;
    s->transport.reset(); // fds close; epoll deregisters
    return true;
}

void
VerifierService::finishSession(Session *s, Transport *t)
{
    validate::StreamVerifier &v = *s->verifier;

    // A session that fails before its close still reports zero
    // latency: the verdict predates the close.
    if (s->closeSeen.load(std::memory_order_acquire)) {
        const double lat =
            std::chrono::duration<double>(Clock::now() - s->closedAt)
                .count();
        s->report.latencySeconds = std::max(0.0, lat);
    }
    s->report.verdict = v.verdict();
    s->report.bytes = v.bytesConsumed();
    s->report.peakBytes = t->peakBytes();
    s->report.dedupHits = v.dedupHits();
    s->report.dedupMisses = v.dedupMisses();

    // Release the decode state now — a 100k-session soak must not hold
    // every finished session's buffers. The transport is retired by the
    // caller (maybeRetire) once the prover has published its close.
    s->verifier.reset();

    adjudicated_.fetch_add(1, std::memory_order_relaxed);
    s->done.store(true, std::memory_order_seq_cst);
    if (s->closeSeen.load(std::memory_order_seq_cst))
        countDrained(s);
}

void
VerifierService::drain()
{
    std::unique_lock<std::mutex> lock(doneLock_);
    doneCv_.wait(lock, [&] {
        return drained_.load(std::memory_order_acquire) >=
               closed_.load(std::memory_order_acquire);
    });
}

std::vector<SessionReport>
VerifierService::reports() const
{
    std::lock_guard<std::mutex> lock(sessionsLock_);
    std::vector<SessionReport> out;
    out.reserve(sessions_.size());
    for (const auto &s : sessions_) {
        if (s->done.load(std::memory_order_acquire)) {
            out.push_back(s->report);
            continue;
        }
        // Unsettled session (service torn down early): snapshot live.
        std::lock_guard<std::mutex> work(s->work);
        SessionReport r = s->report;
        if (s->verifier) {
            r.verdict = s->verifier->verdict();
            r.bytes = s->verifier->bytesConsumed();
            r.dedupHits = s->verifier->dedupHits();
            r.dedupMisses = s->verifier->dedupMisses();
        }
        if (s->transport)
            r.peakBytes = s->transport->peakBytes();
        out.push_back(std::move(r));
    }
    return out;
}

UnitCacheStats
VerifierService::cacheStats() const
{
    return cache_ ? cache_->stats() : UnitCacheStats{};
}

} // namespace rev::verifier
