#include "verifier/service.hpp"

#include <algorithm>

namespace rev::verifier
{

VerifierService::VerifierService(unsigned workers)
{
    workers_.reserve(std::max(1u, workers));
    for (unsigned i = 0; i < std::max(1u, workers); ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

VerifierService::~VerifierService()
{
    stop_.store(true, std::memory_order_release);
    readyCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

u64
VerifierService::openSession(const validate::RefStore &refs,
                             std::size_t ring_bytes)
{
    std::lock_guard<std::mutex> lock(sessionsLock_);
    const u64 id = sessions_.size();
    sessions_.push_back(std::make_unique<Session>(id, ring_bytes, refs));
    return id;
}

std::size_t
VerifierService::offer(u64 session, const u8 *data, std::size_t n)
{
    Session *s = sessions_[session].get();
    const std::size_t accepted = s->ring.write(data, n);
    if (accepted)
        notify(s);
    return accepted;
}

void
VerifierService::closeSession(u64 session)
{
    Session *s = sessions_[session].get();
    s->closedAt = Clock::now();
    s->ring.closeWrite();
    closed_.fetch_add(1, std::memory_order_relaxed);
    notify(s);
}

void
VerifierService::notify(Session *s)
{
    // One queue slot per session: first notifier wins, the worker that
    // pops the session clears the flag before draining and re-checks the
    // ring afterwards, so bytes arriving during the drain are never lost.
    if (s->queued.exchange(true, std::memory_order_acq_rel))
        return;
    {
        std::lock_guard<std::mutex> lock(readyLock_);
        ready_.push_back(s);
    }
    readyCv_.notify_one();
}

void
VerifierService::workerLoop()
{
    for (;;) {
        Session *s = nullptr;
        {
            std::unique_lock<std::mutex> lock(readyLock_);
            readyCv_.wait(lock, [&] {
                return stop_.load(std::memory_order_acquire) ||
                       !ready_.empty();
            });
            if (ready_.empty())
                return; // stop requested and queue drained
            s = ready_.front();
            ready_.pop_front();
        }
        s->queued.store(false, std::memory_order_release);
        service(s);
        // Re-notify if more bytes (or the close marker) raced in while
        // this worker held the session.
        if (!s->finished &&
            (s->ring.readable() != 0 || s->ring.writeClosed()))
            notify(s);
    }
}

void
VerifierService::service(Session *s)
{
    std::lock_guard<std::mutex> lock(s->work);
    if (s->finished)
        return;

    u8 chunk[4096];
    for (std::size_t n; (n = s->ring.read(chunk, sizeof(chunk))) != 0;)
        s->verifier.feed(chunk, n);

    if (!s->verifier.done()) {
        if (!s->ring.writeClosed() || s->ring.readable() != 0)
            return; // wait for more bytes
        s->verifier.finish(); // stream closed mid-session: truncation
    }

    // Verdict rendered. A session that fails before its close still
    // reports zero latency: the verdict predates the close.
    if (s->ring.writeClosed()) {
        const double lat = std::chrono::duration<double>(Clock::now() -
                                                         s->closedAt)
                               .count();
        s->latencySeconds = std::max(0.0, lat);
    }
    s->finished = true;
    {
        // Bump under doneLock_ so drain() cannot test its predicate
        // between the increment and the notify (lost wakeup).
        std::lock_guard<std::mutex> done(doneLock_);
        completed_.fetch_add(1, std::memory_order_release);
    }
    doneCv_.notify_all();
}

void
VerifierService::drain()
{
    std::unique_lock<std::mutex> lock(doneLock_);
    doneCv_.wait(lock, [&] {
        return completed_.load(std::memory_order_acquire) >=
               closed_.load(std::memory_order_acquire);
    });
}

std::vector<SessionReport>
VerifierService::reports() const
{
    std::lock_guard<std::mutex> lock(sessionsLock_);
    std::vector<SessionReport> out;
    out.reserve(sessions_.size());
    for (const auto &s : sessions_) {
        SessionReport r;
        r.id = s->id;
        r.verdict = s->verifier.verdict();
        r.bytes = s->verifier.bytesConsumed();
        r.peakBytes = s->ring.highWater();
        r.latencySeconds = s->latencySeconds;
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace rev::verifier
