/**
 * @file
 * Verifier load generator: N concurrent prover sessions against one
 * VerifierService, with a built-in divergence oracle.
 *
 * The generator builds a small corpus of measurement streams — one per
 * (workload, backend) pair — by running the real Simulator with a
 * StreamWriter attached as the prover-side measurement sink, honoring
 * the REV_TRACE_REPLAY execute-once/time-many switch (the architectural
 * stream of a replayed run is identical to a direct run's, so the
 * measurement session is too). Each corpus entry also captures the
 * *inline golden*: the verdict and counters the in-core backend itself
 * rendered for that run.
 *
 * It then runs N sessions (round-robin over the corpus) on one
 * VerifierService over the selected transport — in-memory rings or
 * Unix-domain socketpairs — from a pool of prover threads that
 * interleave chunked writes across their live sessions. Sessions open
 * *lazily* inside a sliding window (default: the whole population at
 * once; the 100k soak caps the window so live transport memory stays
 * bounded), drain the service, and compare every session's
 * StreamVerdict against its inline golden: Detected / Benign, the
 * violation-reason string, and the architectural counters must all be
 * bit-identical. Any deviation is a divergence — the CI gate fails on
 * a nonzero count.
 *
 * The report also carries a *canonical verdict stream*: one line per
 * session (case identity + full verdict + counters), sorted. Because
 * session->case assignment depends only on claim order, the sorted
 * stream is invariant across transports, worker counts, and dedup
 * settings — CI `cmp`s the memory-transport stream against the socket
 * one byte for byte.
 *
 * Reported throughput numbers: verified sessions per second, p50/p99
 * close-to-verdict session latency, mean stream bytes per session, and
 * the shared-cache dedup hit rate.
 */

#ifndef REV_VERIFIER_LOADGEN_HPP
#define REV_VERIFIER_LOADGEN_HPP

#include <string>
#include <vector>

#include "validate/validator.hpp"
#include "verifier/service.hpp"

namespace rev::verifier
{

/** Load-generator knobs. */
struct LoadGenOptions
{
    /** Workload names (workloads::specProfile); empty = {bzip2, mcf}. */
    std::vector<std::string> benchmarks;

    /** Backends to build corpus streams for. */
    std::vector<validate::Backend> backends = {validate::Backend::Rev,
                                               validate::Backend::LoFat};

    u64 instrBudget = 100000; ///< per-stream recorded run length
    unsigned sessions = 1000; ///< total prover sessions
    unsigned workers = 2;     ///< verifier worker threads
    unsigned provers = 2;     ///< prover (producer) threads
    std::size_t chunkBytes = 1024; ///< prover write granularity
    std::size_t ringBytes = kDefaultRingBytes;

    TransportKind transport = TransportKind::Memory;

    /** Shared verified-unit cache entries; 0 disables dedup. */
    std::size_t dedupEntries = 1u << 16;

    /** Sessions live at once (across all provers); 0 = everything.
     *  The soak preset uses a bounded window so 100k sessions never
     *  hold 100k transports. */
    unsigned window = 0;
};

/** One corpus entry: a recorded stream plus its inline golden. */
struct StreamCase
{
    std::string bench;
    validate::Backend backend = validate::Backend::Rev;
    bool replayed = false; ///< the capture run replayed a recorded trace

    std::vector<u8> stream; ///< the serialized measurement session

    // Inline golden: what the in-core backend rendered for this run.
    bool detected = false;
    std::string reason;
    u64 bbValidated = 0;
    u64 violations = 0;
    u64 chainUpdates = 0;
    u64 bufferSpills = 0;
    u64 spillBytes = 0;
    u64 unattestedBlocks = 0;
    u64 edgeViolations = 0;
};

/** One session whose verdict deviated from its inline golden. */
struct Divergence
{
    u64 session = 0;
    std::size_t caseIdx = 0;
    std::string detail;
};

/** Everything one load-generator run produced. */
struct LoadGenReport
{
    std::vector<StreamCase> cases;
    std::vector<Divergence> divergences;

    unsigned sessions = 0;
    unsigned workers = 0;
    unsigned provers = 0;
    TransportKind transport = TransportKind::Memory;

    double captureSeconds = 0; ///< corpus build (simulate + record)
    double wallSeconds = 0;    ///< feed + verify + drain
    double verificationsPerSec = 0;
    double p50LatencySeconds = 0;
    double p99LatencySeconds = 0;
    double bytesPerSession = 0;
    u64 totalBytes = 0;

    // Per-session transport-memory accounting (occupancy high-water):
    // the mean across sessions and the single worst session. Bounded by
    // the transport capacity — a maxed-out high-water means the prover
    // hit back-pressure.
    double peakBytesPerSession = 0;
    u64 maxPeakBytes = 0;

    // Cross-session dedup outcome (service-wide cache counters).
    u64 dedupHits = 0;
    u64 dedupMisses = 0;
    u64 dedupEvictions = 0;
    double dedupHitRate = 0; ///< hits / (hits + misses), 0 when off

    /** Canonical sorted per-session verdict lines (divergence oracle
     *  across transports: must be byte-identical). */
    std::vector<std::string> verdictLines;
};

/** Build the corpus, run the session fan-out, adjudicate divergences. */
LoadGenReport runLoadGen(const LoadGenOptions &opts);

} // namespace rev::verifier

#endif // REV_VERIFIER_LOADGEN_HPP
