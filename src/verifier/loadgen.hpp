/**
 * @file
 * Verifier load generator: N concurrent prover sessions against one
 * VerifierService, with a built-in divergence oracle.
 *
 * The generator builds a small corpus of measurement streams — one per
 * (workload, backend) pair — by running the real Simulator with a
 * StreamWriter attached as the prover-side measurement sink, honoring
 * the REV_TRACE_REPLAY execute-once/time-many switch (the architectural
 * stream of a replayed run is identical to a direct run's, so the
 * measurement session is too). Each corpus entry also captures the
 * *inline golden*: the verdict and counters the in-core backend itself
 * rendered for that run.
 *
 * It then opens N sessions on one VerifierService (round-robin over the
 * corpus), fans the streams out from a pool of prover threads that
 * interleave chunked writes across their sessions (so ~N sessions are
 * live at once, not one at a time), drains the service, and compares
 * every session's StreamVerdict against its inline golden: Detected /
 * Benign, the violation-reason string, and the architectural counters
 * must all be bit-identical. Any deviation is a divergence — the CI
 * gate fails on a nonzero count.
 *
 * Reported throughput numbers: verified sessions per second, p50/p99
 * close-to-verdict session latency, and mean stream bytes per session.
 */

#ifndef REV_VERIFIER_LOADGEN_HPP
#define REV_VERIFIER_LOADGEN_HPP

#include <string>
#include <vector>

#include "validate/validator.hpp"
#include "verifier/service.hpp"

namespace rev::verifier
{

/** Load-generator knobs. */
struct LoadGenOptions
{
    /** Workload names (workloads::specProfile); empty = {bzip2, mcf}. */
    std::vector<std::string> benchmarks;

    /** Backends to build corpus streams for. */
    std::vector<validate::Backend> backends = {validate::Backend::Rev,
                                               validate::Backend::LoFat};

    u64 instrBudget = 100000; ///< per-stream recorded run length
    unsigned sessions = 1000; ///< concurrent prover sessions
    unsigned workers = 2;     ///< verifier worker threads
    unsigned provers = 2;     ///< prover (producer) threads
    std::size_t chunkBytes = 1024; ///< prover write granularity
    std::size_t ringBytes = kDefaultRingBytes;
};

/** One corpus entry: a recorded stream plus its inline golden. */
struct StreamCase
{
    std::string bench;
    validate::Backend backend = validate::Backend::Rev;
    bool replayed = false; ///< the capture run replayed a recorded trace

    std::vector<u8> stream; ///< the serialized measurement session

    // Inline golden: what the in-core backend rendered for this run.
    bool detected = false;
    std::string reason;
    u64 bbValidated = 0;
    u64 violations = 0;
    u64 chainUpdates = 0;
    u64 bufferSpills = 0;
    u64 spillBytes = 0;
    u64 unattestedBlocks = 0;
    u64 edgeViolations = 0;
};

/** One session whose verdict deviated from its inline golden. */
struct Divergence
{
    u64 session = 0;
    std::size_t caseIdx = 0;
    std::string detail;
};

/** Everything one load-generator run produced. */
struct LoadGenReport
{
    std::vector<StreamCase> cases;
    std::vector<Divergence> divergences;

    unsigned sessions = 0;
    unsigned workers = 0;
    unsigned provers = 0;

    double captureSeconds = 0; ///< corpus build (simulate + record)
    double wallSeconds = 0;    ///< feed + verify + drain
    double verificationsPerSec = 0;
    double p50LatencySeconds = 0;
    double p99LatencySeconds = 0;
    double bytesPerSession = 0;
    u64 totalBytes = 0;

    // Per-session transport-memory accounting (ByteRing occupancy
    // high-water): the mean across sessions and the single worst
    // session. Bounded by the ring capacity — a maxed-out high-water
    // means the prover hit back-pressure.
    double peakBytesPerSession = 0;
    u64 maxPeakBytes = 0;
};

/** Build the corpus, run the session fan-out, adjudicate divergences. */
LoadGenReport runLoadGen(const LoadGenOptions &opts);

} // namespace rev::verifier

#endif // REV_VERIFIER_LOADGEN_HPP
