#include "verifier/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <thread>

#include "core/simulator.hpp"
#include "program/trace.hpp"
#include "validate/refstore.hpp"
#include "validate/stream.hpp"
#include "workloads/generator.hpp"
#include "workloads/profile.hpp"

namespace rev::verifier
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Reference material of one workload, shared by its corpus entries. */
struct BenchRefs
{
    prog::Program program;
    std::unique_ptr<crypto::KeyVault> vault;
    std::unique_ptr<sig::SigStore> store;
    std::unique_ptr<validate::RefStore> refs;
};

/** Compare one adjudicated session against its case's inline golden. */
std::string
divergenceDetail(const StreamCase &c, const validate::StreamVerdict &v)
{
    std::ostringstream os;
    auto field = [&](const char *name, u64 got, u64 want) {
        if (got != want)
            os << name << " " << got << " != inline " << want << "; ";
    };
    if (!v.complete)
        os << "session not adjudicated; ";
    if (v.detected != c.detected)
        os << "verdict " << (v.detected ? "Detected" : "Benign")
           << " != inline " << (c.detected ? "Detected" : "Benign") << "; ";
    else if (v.reason != c.reason)
        os << "reason '" << v.reason << "' != inline '" << c.reason
           << "'; ";
    field("bbValidated", v.bbValidated, c.bbValidated);
    field("violations", v.violations, c.violations);
    field("chainUpdates", v.chainUpdates, c.chainUpdates);
    field("bufferSpills", v.bufferSpills, c.bufferSpills);
    field("spillBytes", v.spillBytes, c.spillBytes);
    field("unattestedBlocks", v.unattestedBlocks, c.unattestedBlocks);
    field("edgeViolations", v.edgeViolations, c.edgeViolations);
    return os.str();
}

} // namespace

LoadGenReport
runLoadGen(const LoadGenOptions &opts)
{
    LoadGenReport report;
    report.sessions = std::max(1u, opts.sessions);
    report.workers = std::max(1u, opts.workers);
    report.provers = std::max(1u, opts.provers);

    std::vector<std::string> benches = opts.benchmarks;
    if (benches.empty())
        benches = {"bzip2", "mcf"};

    // ---- Phase 1: corpus capture. One simulated run per (workload,
    // backend), measurement stream and inline golden side by side.
    const auto captureStart = Clock::now();
    const core::SimConfig base; // defaults shared with every run below
    std::vector<std::unique_ptr<BenchRefs>> refsByBench;
    std::vector<std::size_t> caseRefIdx; // case -> refsByBench slot

    for (const std::string &name : benches) {
        auto br = std::make_unique<BenchRefs>();
        br->program =
            workloads::generateWorkload(workloads::specProfile(name));
        // The verifier's reference material is the toolchain's, not the
        // prover's: an independently built vault + store with the same
        // fuses and seeds. The Simulator below clones this store, so the
        // tables both sides hold are byte-identical by construction.
        br->vault = std::make_unique<crypto::KeyVault>(base.cpuSeed);
        br->store = std::make_unique<sig::SigStore>(
            br->program, base.mode, *br->vault, base.toolchainSeed,
            base.core.splitLimits, base.rev.chg.hashRounds);
        br->refs = std::make_unique<validate::RefStore>(*br->store,
                                                        br->vault.get());

        // Record the architectural trace once (REV config: lowest drain
        // watermark) and replay it into every backend's capture run when
        // REV_TRACE_REPLAY allows — mirroring the sweep's record-once
        // discipline and exercising the replay path end to end.
        prog::Trace trace;
        const bool replay = prog::replayEnabledFromEnv();
        if (replay) {
            core::SimConfig rc = base;
            rc.core.maxInstrs = opts.instrBudget;
            rc.sigStorePrototype = br->store.get();
            prog::TraceRecorder recorder;
            rc.traceRecorder = &recorder;
            core::Simulator sim(br->program, rc);
            sim.run();
            trace = recorder.take();
        }

        for (const validate::Backend backend : opts.backends) {
            core::SimConfig cfg = base;
            cfg.core.maxInstrs = opts.instrBudget;
            cfg.backend = backend;
            cfg.sigStorePrototype = br->store.get();
            validate::StreamWriter writer;
            cfg.measurementSink = &writer;
            if (replay && trace.replayable())
                cfg.replayTrace = &trace;

            core::Simulator sim(br->program, cfg);
            const core::SimResult res = sim.run();
            // Budget-exhausted runs neither halt nor fault; the harness
            // owns the session end, so seal explicitly (idempotent).
            sim.validator()->sealMeasurement();

            StreamCase c;
            c.bench = name;
            c.backend = backend;
            c.replayed = sim.replayActive();
            c.stream = writer.take();
            c.detected = res.run.violation.has_value();
            c.reason = sim.validator()->violationReason();
            c.bbValidated = res.validation.bbValidated;
            c.violations = res.validation.violations;
            c.chainUpdates = res.lofat.chainUpdates;
            c.bufferSpills = res.lofat.bufferSpills;
            c.spillBytes = res.lofat.spillBytes;
            c.unattestedBlocks = res.lofat.unattestedBlocks;
            c.edgeViolations = res.lofat.edgeViolations;
            report.cases.push_back(std::move(c));
            caseRefIdx.push_back(refsByBench.size());
        }
        refsByBench.push_back(std::move(br));
    }
    report.captureSeconds = secondsSince(captureStart);

    // ---- Phase 2: session fan-out. Open every session up front, then
    // prover threads interleave chunked writes across their sessions so
    // the whole population is live concurrently.
    VerifierService service(report.workers);
    std::vector<std::size_t> sessionCase(report.sessions);
    for (unsigned s = 0; s < report.sessions; ++s) {
        sessionCase[s] = s % report.cases.size();
        service.openSession(*refsByBench[caseRefIdx[sessionCase[s]]]->refs,
                            opts.ringBytes);
    }

    const auto feedStart = Clock::now();
    std::vector<std::thread> provers;
    for (unsigned p = 0; p < report.provers; ++p) {
        provers.emplace_back([&, p] {
            // This thread is the single producer for sessions s where
            // s % provers == p (the ByteRing SPSC contract).
            struct Feed
            {
                u64 session;
                const std::vector<u8> *stream;
                std::size_t off = 0;
                bool closed = false;
            };
            std::vector<Feed> feeds;
            for (u64 s = p; s < report.sessions; s += report.provers)
                feeds.push_back(
                    {s, &report.cases[sessionCase[s]].stream, 0, false});
            std::size_t open = feeds.size();
            while (open != 0) {
                bool progressed = false;
                for (Feed &f : feeds) {
                    if (f.closed)
                        continue;
                    if (f.off < f.stream->size()) {
                        const std::size_t n =
                            std::min(opts.chunkBytes,
                                     f.stream->size() - f.off);
                        const std::size_t accepted = service.offer(
                            f.session, f.stream->data() + f.off, n);
                        f.off += accepted;
                        progressed |= accepted != 0;
                    }
                    if (f.off >= f.stream->size()) {
                        service.closeSession(f.session);
                        f.closed = true;
                        --open;
                        progressed = true;
                    }
                }
                // Every ring full: let the verifier workers run.
                if (!progressed)
                    std::this_thread::yield();
            }
        });
    }
    for (std::thread &t : provers)
        t.join();
    service.drain();
    report.wallSeconds = secondsSince(feedStart);

    // ---- Phase 3: adjudicate divergences and summarize.
    const std::vector<SessionReport> sessions = service.reports();
    std::vector<double> latencies;
    latencies.reserve(sessions.size());
    for (const SessionReport &s : sessions) {
        const std::size_t ci = sessionCase[s.id];
        const std::string detail =
            divergenceDetail(report.cases[ci], s.verdict);
        if (!detail.empty())
            report.divergences.push_back({s.id, ci, detail});
        report.totalBytes += s.bytes;
        report.peakBytesPerSession += static_cast<double>(s.peakBytes);
        report.maxPeakBytes = std::max(report.maxPeakBytes, s.peakBytes);
        latencies.push_back(s.latencySeconds);
    }
    if (!sessions.empty())
        report.peakBytesPerSession /= static_cast<double>(sessions.size());
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
        if (latencies.empty())
            return 0.0;
        const std::size_t i = std::min(
            latencies.size() - 1,
            static_cast<std::size_t>(p * static_cast<double>(
                                             latencies.size() - 1)));
        return latencies[i];
    };
    report.p50LatencySeconds = pct(0.50);
    report.p99LatencySeconds = pct(0.99);
    report.verificationsPerSec =
        report.wallSeconds > 0
            ? static_cast<double>(sessions.size()) / report.wallSeconds
            : 0;
    report.bytesPerSession =
        sessions.empty() ? 0
                         : static_cast<double>(report.totalBytes) /
                               static_cast<double>(sessions.size());
    return report;
}

} // namespace rev::verifier
