#include "verifier/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/simulator.hpp"
#include "program/trace.hpp"
#include "validate/refstore.hpp"
#include "validate/stream.hpp"
#include "workloads/generator.hpp"
#include "workloads/profile.hpp"

namespace rev::verifier
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Reference material of one workload, shared by its corpus entries. */
struct BenchRefs
{
    prog::Program program;
    std::unique_ptr<crypto::KeyVault> vault;
    std::unique_ptr<sig::SigStore> store;
    std::unique_ptr<validate::RefStore> refs;
};

/** Compare one adjudicated session against its case's inline golden. */
std::string
divergenceDetail(const StreamCase &c, const validate::StreamVerdict &v)
{
    std::ostringstream os;
    auto field = [&](const char *name, u64 got, u64 want) {
        if (got != want)
            os << name << " " << got << " != inline " << want << "; ";
    };
    if (!v.complete)
        os << "session not adjudicated; ";
    if (v.detected != c.detected)
        os << "verdict " << (v.detected ? "Detected" : "Benign")
           << " != inline " << (c.detected ? "Detected" : "Benign") << "; ";
    else if (v.reason != c.reason)
        os << "reason '" << v.reason << "' != inline '" << c.reason
           << "'; ";
    field("bbValidated", v.bbValidated, c.bbValidated);
    field("violations", v.violations, c.violations);
    field("chainUpdates", v.chainUpdates, c.chainUpdates);
    field("bufferSpills", v.bufferSpills, c.bufferSpills);
    field("spillBytes", v.spillBytes, c.spillBytes);
    field("unattestedBlocks", v.unattestedBlocks, c.unattestedBlocks);
    field("edgeViolations", v.edgeViolations, c.edgeViolations);
    return os.str();
}

/** One canonical verdict line: everything adjudication-relevant, no
 *  session id (ids depend on open-order races), so the sorted stream is
 *  transport/worker/dedup-invariant. */
std::string
verdictLine(std::size_t caseIdx, const StreamCase &c,
            const validate::StreamVerdict &v)
{
    std::ostringstream os;
    os << "case=" << caseIdx << " bench=" << c.bench
       << " backend=" << validate::backendName(c.backend)
       << " complete=" << (v.complete ? 1 : 0)
       << " detected=" << (v.detected ? 1 : 0) << " reason='" << v.reason
       << "'"
       << " bb=" << v.bbValidated << " viol=" << v.violations
       << " chain=" << v.chainUpdates << " spills=" << v.bufferSpills
       << " spillBytes=" << v.spillBytes
       << " unattested=" << v.unattestedBlocks
       << " edges=" << v.edgeViolations;
    return os.str();
}

} // namespace

LoadGenReport
runLoadGen(const LoadGenOptions &opts)
{
    LoadGenReport report;
    report.sessions = std::max(1u, opts.sessions);
    report.workers = std::max(1u, opts.workers);
    report.provers = std::max(1u, opts.provers);
    report.transport = opts.transport;

    std::vector<std::string> benches = opts.benchmarks;
    if (benches.empty())
        benches = {"bzip2", "mcf"};

    // ---- Phase 1: corpus capture. One simulated run per (workload,
    // backend), measurement stream and inline golden side by side.
    const auto captureStart = Clock::now();
    const core::SimConfig base; // defaults shared with every run below
    std::vector<std::unique_ptr<BenchRefs>> refsByBench;
    std::vector<std::size_t> caseRefIdx; // case -> refsByBench slot

    for (const std::string &name : benches) {
        auto br = std::make_unique<BenchRefs>();
        br->program =
            workloads::generateWorkload(workloads::specProfile(name));
        // The verifier's reference material is the toolchain's, not the
        // prover's: an independently built vault + store with the same
        // fuses and seeds. The Simulator below clones this store, so the
        // tables both sides hold are byte-identical by construction.
        br->vault = std::make_unique<crypto::KeyVault>(base.cpuSeed);
        br->store = std::make_unique<sig::SigStore>(
            br->program, base.mode, *br->vault, base.toolchainSeed,
            base.core.splitLimits, base.rev.chg.hashRounds);
        br->refs = std::make_unique<validate::RefStore>(*br->store,
                                                        br->vault.get());

        // Record the architectural trace once (REV config: lowest drain
        // watermark) and replay it into every backend's capture run when
        // REV_TRACE_REPLAY allows — mirroring the sweep's record-once
        // discipline and exercising the replay path end to end.
        prog::Trace trace;
        const bool replay = prog::replayEnabledFromEnv();
        if (replay) {
            core::SimConfig rc = base;
            rc.core.maxInstrs = opts.instrBudget;
            rc.sigStorePrototype = br->store.get();
            prog::TraceRecorder recorder;
            rc.traceRecorder = &recorder;
            core::Simulator sim(br->program, rc);
            sim.run();
            trace = recorder.take();
        }

        for (const validate::Backend backend : opts.backends) {
            core::SimConfig cfg = base;
            cfg.core.maxInstrs = opts.instrBudget;
            cfg.backend = backend;
            cfg.sigStorePrototype = br->store.get();
            validate::StreamWriter writer;
            cfg.measurementSink = &writer;
            if (replay && trace.replayable())
                cfg.replayTrace = &trace;

            core::Simulator sim(br->program, cfg);
            const core::SimResult res = sim.run();
            // Budget-exhausted runs neither halt nor fault; the harness
            // owns the session end, so seal explicitly (idempotent).
            sim.validator()->sealMeasurement();

            StreamCase c;
            c.bench = name;
            c.backend = backend;
            c.replayed = sim.replayActive();
            c.stream = writer.take();
            c.detected = res.run.violation.has_value();
            c.reason = sim.validator()->violationReason();
            c.bbValidated = res.validation.bbValidated;
            c.violations = res.validation.violations;
            c.chainUpdates = res.lofat.chainUpdates;
            c.bufferSpills = res.lofat.bufferSpills;
            c.spillBytes = res.lofat.spillBytes;
            c.unattestedBlocks = res.lofat.unattestedBlocks;
            c.edgeViolations = res.lofat.edgeViolations;
            report.cases.push_back(std::move(c));
            caseRefIdx.push_back(refsByBench.size());
        }
        refsByBench.push_back(std::move(br));
    }
    report.captureSeconds = secondsSince(captureStart);

    // ---- Phase 2: session fan-out. Prover threads claim session slots
    // from a shared counter and open them lazily, each keeping at most
    // window/provers sessions live (SPSC holds: the claiming thread is
    // the only producer its sessions ever see). Finished sessions free
    // their transports inside the service, so a bounded window keeps
    // 100k-session soaks at a flat memory profile.
    ServiceOptions sopts;
    sopts.workers = report.workers;
    sopts.dedupEntries = opts.dedupEntries;
    VerifierService service(sopts);

    const unsigned window =
        opts.window == 0 ? report.sessions
                         : std::max(opts.window, report.provers);
    const unsigned perProver =
        std::max(1u, window / report.provers);

    std::atomic<u64> nextSlot{0};
    std::vector<std::pair<u64, std::size_t>> idToCase; // session id -> case
    std::mutex idToCaseLock;

    const auto feedStart = Clock::now();
    std::vector<std::thread> provers;
    for (unsigned p = 0; p < report.provers; ++p) {
        provers.emplace_back([&] {
            struct Feed
            {
                u64 session;
                const std::vector<u8> *stream;
                std::size_t off = 0;
            };
            std::vector<Feed> feeds;
            std::vector<std::pair<u64, std::size_t>> openedHere;
            bool exhausted = false;
            for (;;) {
                // Refill the live window from the shared slot counter.
                // The window bounds *unadjudicated* sessions, not just
                // this prover's feeds: a closed session still holds its
                // transport (fds, buffers) until the verifier renders
                // its verdict, so opening ahead of the verification
                // backlog would hoard fds at soak scale.
                while (!exhausted && feeds.size() < perProver &&
                       service.sessionsOpened() -
                               service.sessionsAdjudicated() <
                           window) {
                    const u64 slot =
                        nextSlot.fetch_add(1, std::memory_order_relaxed);
                    if (slot >= report.sessions) {
                        exhausted = true;
                        break;
                    }
                    const std::size_t ci = slot % report.cases.size();
                    const u64 id = service.openSession(
                        *refsByBench[caseRefIdx[ci]]->refs, opts.transport,
                        opts.ringBytes);
                    openedHere.emplace_back(id, ci);
                    feeds.push_back({id, &report.cases[ci].stream, 0});
                }
                if (feeds.empty()) {
                    if (exhausted)
                        break;
                    // Backlogged: wait for the verifier to catch up.
                    std::this_thread::yield();
                    continue;
                }

                bool progressed = false;
                for (std::size_t i = 0; i < feeds.size();) {
                    Feed &f = feeds[i];
                    if (f.off < f.stream->size()) {
                        const std::size_t n =
                            std::min(opts.chunkBytes,
                                     f.stream->size() - f.off);
                        const std::size_t accepted = service.offer(
                            f.session, f.stream->data() + f.off, n);
                        f.off += accepted;
                        progressed |= accepted != 0;
                    }
                    if (f.off >= f.stream->size()) {
                        service.closeSession(f.session);
                        progressed = true;
                        feeds[i] = feeds.back();
                        feeds.pop_back();
                        continue; // the swapped-in feed runs this pass
                    }
                    ++i;
                }
                // Every transport full: let the verifier workers run.
                if (!progressed)
                    std::this_thread::yield();
            }
            std::lock_guard<std::mutex> lock(idToCaseLock);
            idToCase.insert(idToCase.end(), openedHere.begin(),
                            openedHere.end());
        });
    }
    for (std::thread &t : provers)
        t.join();
    service.drain();
    report.wallSeconds = secondsSince(feedStart);

    // ---- Phase 3: adjudicate divergences and summarize.
    std::vector<std::size_t> sessionCase(service.sessionsOpened());
    for (const auto &[id, ci] : idToCase)
        sessionCase[id] = ci;

    const std::vector<SessionReport> sessions = service.reports();
    std::vector<double> latencies;
    latencies.reserve(sessions.size());
    report.verdictLines.reserve(sessions.size());
    for (const SessionReport &s : sessions) {
        const std::size_t ci = sessionCase[s.id];
        const std::string detail =
            divergenceDetail(report.cases[ci], s.verdict);
        if (!detail.empty())
            report.divergences.push_back({s.id, ci, detail});
        report.verdictLines.push_back(
            verdictLine(ci, report.cases[ci], s.verdict));
        report.totalBytes += s.bytes;
        report.peakBytesPerSession += static_cast<double>(s.peakBytes);
        report.maxPeakBytes = std::max(report.maxPeakBytes, s.peakBytes);
        latencies.push_back(s.latencySeconds);
    }
    std::sort(report.verdictLines.begin(), report.verdictLines.end());
    if (!sessions.empty())
        report.peakBytesPerSession /= static_cast<double>(sessions.size());
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
        if (latencies.empty())
            return 0.0;
        const std::size_t i = std::min(
            latencies.size() - 1,
            static_cast<std::size_t>(p * static_cast<double>(
                                             latencies.size() - 1)));
        return latencies[i];
    };
    report.p50LatencySeconds = pct(0.50);
    report.p99LatencySeconds = pct(0.99);
    report.verificationsPerSec =
        report.wallSeconds > 0
            ? static_cast<double>(sessions.size()) / report.wallSeconds
            : 0;
    report.bytesPerSession =
        sessions.empty() ? 0
                         : static_cast<double>(report.totalBytes) /
                               static_cast<double>(sessions.size());

    const UnitCacheStats cs = service.cacheStats();
    report.dedupHits = cs.hits;
    report.dedupMisses = cs.misses;
    report.dedupEvictions = cs.evictions;
    if (cs.hits + cs.misses != 0)
        report.dedupHitRate = static_cast<double>(cs.hits) /
                              static_cast<double>(cs.hits + cs.misses);
    return report;
}

} // namespace rev::verifier
