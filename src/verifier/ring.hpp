/**
 * @file
 * ByteRing: the per-session transport between one prover and the
 * verifier service.
 *
 * A bounded single-producer / single-consumer byte queue. The prover
 * side (exactly one thread per session) writes measurement bytes and
 * eventually closes; the service side (one worker at a time — the
 * service serializes workers per session) drains them into the
 * session's StreamVerifier. Lock-free: head and tail are monotonic
 * 64-bit positions with acquire/release ordering, so a full ring simply
 * back-pressures the prover (write() accepts fewer bytes) instead of
 * blocking the worker pool.
 *
 * Wrap-around audit (PR 9): occupancy is always `tail - head` on the
 * monotonic u64 positions, never a masked index difference, so the
 * exactly-full state (tail - head == capacity) is unambiguous — free
 * space computes to 0 and write() accepts nothing; there is no
 * full/empty aliasing and no reserved slot. Both copy loops split at
 * the physical buffer edge (`run = min(n - i, size - at)`), so a span
 * that crosses the wrap point is copied in two memcpys.
 * tests/verifier/ring_test.cpp pins both properties.
 */

#ifndef REV_VERIFIER_RING_HPP
#define REV_VERIFIER_RING_HPP

#include <atomic>
#include <cstring>
#include <memory>

#include "common/logging.hpp"
#include "common/types.hpp"

namespace rev::verifier
{

/** Default per-session transport capacity (ring bytes / requested
 *  socket buffer size). */
inline constexpr std::size_t kDefaultRingBytes = 1u << 20;

/** Bounded SPSC byte queue with a close-of-stream marker. */
class ByteRing
{
  public:
    /** @param capacity Ring size in bytes; must be a power of two. */
    explicit ByteRing(std::size_t capacity)
        // Default-initialized on purpose: every readable byte was
        // written first (read() only returns up to tail), so zeroing
        // the buffer would touch `capacity` worth of pages per session
        // for nothing — at 100k sessions that memset dominates the
        // open path and bloats RSS with pages the stream never uses.
        : buf_(new u8[capacity]), size_(capacity), mask_(capacity - 1)
    {
        REV_ASSERT(capacity != 0 && (capacity & mask_) == 0,
                   "ByteRing capacity must be a power of two");
    }

    std::size_t capacity() const { return size_; }

    /**
     * Producer: append up to @p n bytes.
     * @return Bytes accepted (less than @p n when the ring is full; the
     *         prover retries after the consumer drains).
     */
    std::size_t
    write(const u8 *data, std::size_t n)
    {
        const u64 head = head_.load(std::memory_order_acquire);
        const u64 tail = tail_.load(std::memory_order_relaxed);
        const std::size_t free = size_ - static_cast<std::size_t>(
                                                   tail - head);
        if (n > free)
            n = free;
        for (std::size_t i = 0; i < n;) {
            const std::size_t at = static_cast<std::size_t>(tail + i) & mask_;
            const std::size_t run = std::min(n - i, size_ - at);
            std::memcpy(buf_.get() + at, data + i, run);
            i += run;
        }
        tail_.store(tail + n, std::memory_order_release);
        // Producer-side occupancy high-water mark: head may have advanced
        // since the load above, so this can only over-estimate — the
        // right direction for a memory-accounting ceiling.
        const u64 occ = tail + n - head;
        if (occ > highWater_.load(std::memory_order_relaxed))
            highWater_.store(occ, std::memory_order_relaxed);
        return n;
    }

    /**
     * Consumer: drain up to @p max bytes into @p out.
     * @return Bytes read (0 when empty).
     */
    std::size_t
    read(u8 *out, std::size_t max)
    {
        const u64 head = head_.load(std::memory_order_relaxed);
        const u64 tail = tail_.load(std::memory_order_acquire);
        std::size_t n = static_cast<std::size_t>(tail - head);
        if (n > max)
            n = max;
        for (std::size_t i = 0; i < n;) {
            const std::size_t at = static_cast<std::size_t>(head + i) & mask_;
            const std::size_t run = std::min(n - i, size_ - at);
            std::memcpy(out + i, buf_.get() + at, run);
            i += run;
        }
        head_.store(head + n, std::memory_order_release);
        return n;
    }

    /** Consumer-visible unread byte count. */
    std::size_t
    readable() const
    {
        return static_cast<std::size_t>(
            tail_.load(std::memory_order_acquire) -
            head_.load(std::memory_order_acquire));
    }

    /** Peak buffered occupancy in bytes over the ring's lifetime (the
     *  session's transport-memory high-water; capacity is the ceiling).
     *  Updated by the producer; exact once writing stopped. */
    std::size_t
    highWater() const
    {
        return static_cast<std::size_t>(
            highWater_.load(std::memory_order_acquire));
    }

    /** Producer: no further bytes will be written. */
    void closeWrite() { closed_.store(true, std::memory_order_release); }

    bool
    writeClosed() const
    {
        return closed_.load(std::memory_order_acquire);
    }

  private:
    std::unique_ptr<u8[]> buf_;
    const std::size_t size_;
    const std::size_t mask_;
    std::atomic<u64> head_{0}; ///< consumer position (bytes read)
    std::atomic<u64> tail_{0}; ///< producer position (bytes written)
    std::atomic<u64> highWater_{0}; ///< peak (tail - head) seen by write()
    std::atomic<bool> closed_{false};
};

} // namespace rev::verifier

#endif // REV_VERIFIER_RING_HPP
