#include "verifier/transport.hpp"

#include <algorithm>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define REV_HAVE_SOCKETPAIR 1
#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace rev::verifier
{

// ---------------------------------------------------------------------------
// FrameDecoder

void
FrameDecoder::encodeFrame(std::vector<u8> *out, const u8 *payload,
                          std::size_t n)
{
    while (n != 0) {
        const std::size_t take = std::min(n, kMaxFramePayload);
        const u32 len = static_cast<u32>(take);
        out->push_back(static_cast<u8>(len));
        out->push_back(static_cast<u8>(len >> 8));
        out->push_back(static_cast<u8>(len >> 16));
        out->push_back(static_cast<u8>(len >> 24));
        out->insert(out->end(), payload, payload + take);
        payload += take;
        n -= take;
    }
}

void
FrameDecoder::push(const u8 *data, std::size_t n)
{
    if (corrupt_)
        return; // poisoned: discard so the sender can never back us up
    raw_.insert(raw_.end(), data, data + n);
    parse();
    const std::size_t occ =
        (raw_.size() - rawOff_) + (payload_.size() - payloadOff_);
    peak_ = std::max(peak_, occ);
}

void
FrameDecoder::parse()
{
    for (;;) {
        const std::size_t avail = raw_.size() - rawOff_;
        if (need_ != 0) {
            const std::size_t run = std::min(need_, avail);
            payload_.insert(payload_.end(), raw_.begin() + rawOff_,
                            raw_.begin() + rawOff_ + run);
            rawOff_ += run;
            need_ -= run;
            if (need_ != 0)
                break; // frame continues in a later read
            continue;
        }
        if (avail < kFrameHeaderBytes)
            break;
        const u8 *p = raw_.data() + rawOff_;
        const u32 len = static_cast<u32>(p[0]) |
                        (static_cast<u32>(p[1]) << 8) |
                        (static_cast<u32>(p[2]) << 16) |
                        (static_cast<u32>(p[3]) << 24);
        if (len == 0 || len > kMaxFramePayload) {
            corrupt_ = true;
            raw_.clear();
            rawOff_ = 0;
            return;
        }
        rawOff_ += kFrameHeaderBytes;
        need_ = len;
    }
    if (rawOff_ > 4096) {
        raw_.erase(raw_.begin(),
                   raw_.begin() + static_cast<std::ptrdiff_t>(rawOff_));
        rawOff_ = 0;
    }
}

std::size_t
FrameDecoder::take(u8 *out, std::size_t max)
{
    const std::size_t n = std::min(max, payload_.size() - payloadOff_);
    std::memcpy(out, payload_.data() + payloadOff_, n);
    payloadOff_ += n;
    if (payloadOff_ == payload_.size() || payloadOff_ > 64 * 1024) {
        payload_.erase(payload_.begin(),
                       payload_.begin() +
                           static_cast<std::ptrdiff_t>(payloadOff_));
        payloadOff_ = 0;
    }
    return n;
}

// ---------------------------------------------------------------------------
// SocketTransport

#if REV_HAVE_SOCKETPAIR

namespace
{

void
setNonBlocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

SocketTransport::SocketTransport(std::size_t bufBytes)
{
    int fds[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        return; // valid() stays false; the service falls back to a ring
    wfd_ = fds[0];
    rfd_ = fds[1];
    setNonBlocking(wfd_);
    setNonBlocking(rfd_);
    // Size the kernel buffers to the requested back-pressure horizon
    // (the kernel clamps to its own minimum/maximum; advisory only).
    const int want = static_cast<int>(std::min<std::size_t>(
        bufBytes, static_cast<std::size_t>(1) << 20));
    setsockopt(wfd_, SOL_SOCKET, SO_SNDBUF, &want, sizeof(want));
    setsockopt(rfd_, SOL_SOCKET, SO_RCVBUF, &want, sizeof(want));
}

SocketTransport::~SocketTransport()
{
    if (wfd_ >= 0)
        close(wfd_);
    if (rfd_ >= 0)
        close(rfd_);
}

bool
SocketTransport::flushPending()
{
    while (pendingOff_ < pending_.size()) {
        const ssize_t w = ::send(wfd_, pending_.data() + pendingOff_,
                                 pending_.size() - pendingOff_,
#ifdef MSG_NOSIGNAL
                                 MSG_NOSIGNAL
#else
                                 0
#endif
        );
        if (w > 0) {
            pendingOff_ += static_cast<std::size_t>(w);
            continue;
        }
        if (w < 0 && errno == EINTR)
            continue;
        // EAGAIN (kernel buffer full) or a dead peer: keep the frame
        // remainder pending; back-pressure reaches the caller as 0.
        return false;
    }
    pending_.clear();
    pendingOff_ = 0;
    return true;
}

std::size_t
SocketTransport::send(const u8 *data, std::size_t n)
{
    if (sendClosed_ || wfd_ < 0 || n == 0)
        return 0;
    // At most one frame is ever buffered locally: a send() is accepted
    // only once the previous frame is fully inside the kernel, so local
    // buffering stays bounded by kFrameHeaderBytes + kMaxFramePayload.
    if (!flushPending())
        return 0;
    n = std::min(n, kMaxFramePayload);
    pending_.reserve(kFrameHeaderBytes + n);
    FrameDecoder::encodeFrame(&pending_, data, n);
    const std::size_t occ = pending_.size();
    std::size_t seen = peak_.load(std::memory_order_relaxed);
    while (occ > seen &&
           !peak_.compare_exchange_weak(seen, occ,
                                        std::memory_order_relaxed)) {
    }
    flushPending(); // best effort; remainder flushes on the next call
    return n;       // the frame is owned now: accepted in full
}

void
SocketTransport::closeSend()
{
    if (sendClosed_ || wfd_ < 0)
        return;
    sendClosed_ = true;
    // Drain the pending frame with a bounded wait. The only way this
    // fails is a verifier that stopped reading (it already rendered a
    // verdict); dropping the tail then reads as honest truncation.
    for (int tries = 0; !flushPending() && tries < 200; ++tries) {
        struct pollfd pfd = {wfd_, POLLOUT, 0};
        poll(&pfd, 1, 10);
    }
    shutdown(wfd_, SHUT_WR);
}

std::size_t
SocketTransport::recv(u8 *out, std::size_t max)
{
    if (rfd_ < 0)
        return 0;
    for (;;) {
        const std::size_t got = rx_.take(out, max);
        if (got != 0) {
            const std::size_t occ = rx_.pending();
            std::size_t seen = peak_.load(std::memory_order_relaxed);
            while (occ > seen && !peak_.compare_exchange_weak(
                                     seen, occ, std::memory_order_relaxed)) {
            }
            return got;
        }
        if (eof_)
            return 0;
        u8 buf[8192];
        const ssize_t r = ::recv(rfd_, buf, sizeof(buf), 0);
        if (r > 0) {
            // push() discards after corruption, so a poisoned session
            // keeps draining its prover without growing memory.
            rx_.push(buf, static_cast<std::size_t>(r));
            const std::size_t occ = rx_.peakBuffered();
            std::size_t seen = peak_.load(std::memory_order_relaxed);
            while (occ > seen && !peak_.compare_exchange_weak(
                                     seen, occ, std::memory_order_relaxed)) {
            }
            if (rx_.corrupt())
                continue; // keep draining the socket dry this pass
            continue;
        }
        if (r == 0) {
            eof_ = true;
            rx_.markEof();
            continue; // serve whatever decoded bytes remain
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return 0;
        // Connection error: treat as a disconnect.
        eof_ = true;
        rx_.markEof();
        return 0;
    }
}

bool
SocketTransport::finished() const
{
    return eof_ && rx_.pending() == 0;
}

std::size_t
SocketTransport::peakBytes() const
{
    return peak_.load(std::memory_order_relaxed);
}

#else // !REV_HAVE_SOCKETPAIR

SocketTransport::SocketTransport(std::size_t) {}
SocketTransport::~SocketTransport() = default;
bool SocketTransport::flushPending() { return true; }
std::size_t SocketTransport::send(const u8 *, std::size_t) { return 0; }
void SocketTransport::closeSend() {}
std::size_t SocketTransport::recv(u8 *, std::size_t) { return 0; }
bool SocketTransport::finished() const { return true; }
std::size_t SocketTransport::peakBytes() const { return 0; }

#endif // REV_HAVE_SOCKETPAIR

} // namespace rev::verifier
