/**
 * @file
 * VerifierService: the session-multiplexed attestation verifier.
 *
 * The service side of the attestation split (ScaRR-style
 * attestation-as-a-service): any number of provers each hold one open
 * *session* — a ByteRing they write their serialized measurement stream
 * into — and a small worker pool drains ready sessions and advances
 * their StreamVerifiers. The design is event-loop shaped:
 *
 *  - Provers never block workers: a session ring that fills up
 *    back-pressures only its own prover.
 *  - A session enters the ready queue at most once (an atomic `queued`
 *    flag); whichever worker pops it drains everything available under
 *    the session's own lock, so per-session verification stays
 *    single-threaded (StreamVerifier is not concurrent) while different
 *    sessions verify in parallel.
 *  - Reference lookups batch inside StreamVerifier (RefStore::
 *    lookupBatch groups a chunk's lookups by module shard), so a
 *    thousand concurrent sessions contend on a handful of shard locks
 *    a few times per chunk instead of per block.
 *
 * Session latency is measured from close (the prover sealed and
 * closed the ring) to the verdict render; the load generator reports
 * the p99 across sessions.
 */

#ifndef REV_VERIFIER_SERVICE_HPP
#define REV_VERIFIER_SERVICE_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "validate/stream_verifier.hpp"
#include "verifier/ring.hpp"

namespace rev::verifier
{

/** Default per-session ring capacity (bytes, power of two). */
inline constexpr std::size_t kDefaultRingBytes = 1u << 16;

/** Outcome of one adjudicated session. */
struct SessionReport
{
    u64 id = 0;
    validate::StreamVerdict verdict;
    u64 bytes = 0;          ///< stream bytes the verifier consumed
    u64 peakBytes = 0;      ///< ring-occupancy high-water (transport
                            ///< memory this session actually held)
    double latencySeconds = 0; ///< close-of-stream to verdict render
};

/**
 * The verifier service: open sessions, feed bytes, collect verdicts.
 *
 * Thread contract: openSession()/drain()/reports() are called by the
 * controlling thread; offer()/closeSession() for one session are called
 * by that session's single prover thread (different sessions may use
 * different threads).
 */
class VerifierService
{
  public:
    /** @param workers Verification worker threads (min 1). */
    explicit VerifierService(unsigned workers);
    ~VerifierService();

    VerifierService(const VerifierService &) = delete;
    VerifierService &operator=(const VerifierService &) = delete;

    /**
     * Open a session adjudicated against @p refs (per-session: one
     * service multiplexes sessions of any number of attested programs).
     * @p refs must outlive the service. Returns the session id (dense,
     * starting at 0). Open every session before provers start feeding.
     */
    u64 openSession(const validate::RefStore &refs,
                    std::size_t ringBytes = kDefaultRingBytes);

    /**
     * Prover: append up to @p n measurement bytes to @p session.
     * @return Bytes accepted (back-pressure when the ring is full —
     *         retry the rest after the service drains).
     */
    std::size_t offer(u64 session, const u8 *data, std::size_t n);

    /** Prover: the measurement stream is complete. */
    void closeSession(u64 session);

    /** Block until every closed session is adjudicated. */
    void drain();

    /** Per-session outcomes (stable by session id). Call after drain(). */
    std::vector<SessionReport> reports() const;

    u64 sessionsOpened() const { return sessions_.size(); }
    u64 sessionsCompleted() const
    {
        return completed_.load(std::memory_order_relaxed);
    }

  private:
    using Clock = std::chrono::steady_clock;

    struct Session
    {
        u64 id = 0;
        ByteRing ring;
        validate::StreamVerifier verifier;
        std::mutex work; ///< serializes workers over this session
        std::atomic<bool> queued{false}; ///< present in the ready queue
        bool finished = false;           ///< verdict rendered and recorded
        Clock::time_point closedAt{};
        double latencySeconds = 0;

        Session(u64 id_, std::size_t ring_bytes,
                const validate::RefStore &refs)
            : id(id_), ring(ring_bytes), verifier(refs)
        {
        }
    };

    /** Enqueue @p s for a worker unless it is already queued. */
    void notify(Session *s);

    void workerLoop();

    /** Drain and verify everything available for @p s (one worker). */
    void service(Session *s);

    // Sessions are append-only; openSession() is controller-only, and
    // provers/workers touch only their own Session objects.
    std::vector<std::unique_ptr<Session>> sessions_;
    mutable std::mutex sessionsLock_; ///< guards sessions_ growth vs readers

    std::deque<Session *> ready_;
    std::mutex readyLock_;
    std::condition_variable readyCv_;

    std::atomic<u64> closed_{0};
    std::atomic<u64> completed_{0};
    std::condition_variable doneCv_; ///< signaled on session completion
    std::mutex doneLock_;

    std::atomic<bool> stop_{false};
    std::vector<std::thread> workers_;
};

} // namespace rev::verifier

#endif // REV_VERIFIER_SERVICE_HPP
