/**
 * @file
 * VerifierService: the session-multiplexed attestation verifier.
 *
 * The service side of the attestation split (ScaRR-style
 * attestation-as-a-service): any number of provers each hold one open
 * *session* — a Transport they write their serialized measurement
 * stream into — and a small worker pool drains ready sessions and
 * advances their StreamVerifiers. Since PR 9 the scheduling core is a
 * real event loop, not a mutex/condvar ready queue:
 *
 *  - Every worker blocks in epoll_wait() on one shared epoll set.
 *    Socket-transport sessions register their verifier-side fd with
 *    EPOLLONESHOT, so readiness wakes exactly one worker, that worker
 *    owns the session while it drains, and re-arms the fd afterwards.
 *    In-memory (ring) sessions signal through an eventfd *doorbell*
 *    plus a tiny ready deque — a session enters it at most once (the
 *    atomic `queued` flag). One worker services tens of thousands of
 *    idle sessions without a thread, a condvar wait, or a poll tick
 *    each.
 *  - Per-session decode state is fully resumable: the StreamVerifier
 *    consumes partial records and the socket FrameDecoder reassembles
 *    torn reads, so a worker can abandon a session mid-record at any
 *    byte boundary and any other worker can resume it later.
 *  - Provers never block workers: a full transport back-pressures only
 *    its own prover.
 *  - Cross-session dedup: all sessions share one VerifiedUnitCache, so
 *    identical (term, digest) table walks and identical LO-FAT chain
 *    folds are paid once service-wide instead of once per session.
 *    Per-session hit/miss counts surface in SessionReport next to
 *    peakBytes; service-wide counters via cacheStats().
 *  - A finished session releases its verifier and transport memory
 *    (the verdict is snapshotted into its report first), so a 100k
 *    session soak holds live state only for the in-flight window.
 *
 * On hosts without epoll the service falls back to the PR 6
 * mutex/condvar loop (socket transports degrade to rings there).
 *
 * Session latency is measured from close (the prover sealed the
 * transport) to the verdict render; the load generator reports the p99
 * across sessions.
 */

#ifndef REV_VERIFIER_SERVICE_HPP
#define REV_VERIFIER_SERVICE_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "validate/stream_verifier.hpp"
#include "verifier/transport.hpp"
#include "verifier/unit_cache.hpp"

namespace rev::verifier
{

/** Which transport a session runs over. */
enum class TransportKind : u8
{
    Memory, ///< in-process SPSC ByteRing (PR 6 behavior)
    Socket, ///< Unix-domain socketpair, length-framed chunks
};

const char *transportName(TransportKind kind);

/** Service-wide knobs. */
struct ServiceOptions
{
    unsigned workers = 1;

    /** Shared verified-unit cache capacity (entries across unit + fold
     *  key spaces); 0 disables cross-session dedup entirely. */
    std::size_t dedupEntries = 1u << 16;
};

/** Outcome of one adjudicated session. */
struct SessionReport
{
    u64 id = 0;
    validate::StreamVerdict verdict;
    u64 bytes = 0;     ///< stream bytes the verifier consumed
    u64 peakBytes = 0; ///< transport-occupancy high-water (memory this
                       ///< session actually held in transit), frozen
                       ///< when the verdict renders — bytes swallowed
                       ///< after the verdict do not raise it
    u64 dedupHits = 0;   ///< shared-cache hits this session
    u64 dedupMisses = 0; ///< shared-cache misses this session
    double latencySeconds = 0; ///< close-of-stream to verdict render
};

/**
 * The verifier service: open sessions, feed bytes, collect verdicts.
 *
 * Thread contract: openSession() may be called from any thread at any
 * time (sessions can be opened while others are mid-flight — the soak
 * load generator opens lazily in a sliding window); offer() and
 * closeSession() for one session are called by that session's single
 * prover thread; drain()/reports() by the controlling thread after the
 * provers finish. No offer() after closeSession() for the same session.
 */
class VerifierService
{
  public:
    explicit VerifierService(const ServiceOptions &opts);
    /** Convenience: @p workers workers, default dedup. */
    explicit VerifierService(unsigned workers)
        : VerifierService(ServiceOptions{workers, 1u << 16})
    {
    }
    ~VerifierService();

    VerifierService(const VerifierService &) = delete;
    VerifierService &operator=(const VerifierService &) = delete;

    /**
     * Open a session adjudicated against @p refs (per-session: one
     * service multiplexes sessions of any number of attested programs).
     * @p refs must outlive the service. Returns the session id (dense,
     * in open order).
     */
    u64 openSession(const validate::RefStore &refs,
                    TransportKind kind = TransportKind::Memory,
                    std::size_t ringBytes = kDefaultRingBytes);

    /** Open a session over a caller-built transport (fault-injection
     *  tests wrap transports in FlakyTransport decorators). */
    u64 openSessionWith(const validate::RefStore &refs,
                        std::unique_ptr<Transport> transport);

    /**
     * Prover: append up to @p n measurement bytes to @p session.
     * @return Bytes accepted (back-pressure when the transport is full
     *         — retry the rest after the service drains). A session
     *         whose verdict is already rendered swallows further bytes.
     */
    std::size_t offer(u64 session, const u8 *data, std::size_t n);

    /** Prover: the measurement stream is complete. */
    void closeSession(u64 session);

    /** Block until every closed session is adjudicated. */
    void drain();

    /** Per-session outcomes (stable by session id). Call after drain(). */
    std::vector<SessionReport> reports() const;

    /** Service-wide dedup counters (zeros when dedup is disabled). */
    UnitCacheStats cacheStats() const;

    u64 sessionsOpened() const
    {
        return opened_.load(std::memory_order_relaxed);
    }
    /** Sessions whose verdict is rendered (closed or not). */
    u64 sessionsAdjudicated() const
    {
        return adjudicated_.load(std::memory_order_relaxed);
    }

  private:
    using Clock = std::chrono::steady_clock;

    struct Session
    {
        u64 id = 0;
        /** Reset (under `work`) only once `proverGone` is observed, so
         *  the prover-side offer()/closeSession() accesses never race
         *  the teardown. */
        std::unique_ptr<Transport> transport;
        std::unique_ptr<validate::StreamVerifier> verifier;
        std::mutex work; ///< serializes workers over this session
        std::atomic<bool> queued{false}; ///< present in the ready deque
        std::atomic<bool> done{false};   ///< verdict rendered
        std::atomic<bool> closeSeen{false};
        /** The prover made its last transport access (published at the
         *  end of closeSession); gates transport teardown. */
        std::atomic<bool> proverGone{false};
        std::atomic<bool> counted{false}; ///< contributed to drained_
        Clock::time_point closedAt{};
        SessionReport report; ///< snapshotted at finish
        std::atomic<bool> watched{false}; ///< fd in the event loop
    };

    u64 addSession(const validate::RefStore &refs,
                   std::unique_ptr<Transport> transport);
    Session *sessionPtr(u64 id) const;

    /** Enqueue @p s on the doorbell path unless already queued. */
    void notify(Session *s);

    /** Close-time notify: guarantees a service pass that observes
     *  proverGone even when the session is already queued or a worker
     *  is mid-pass (see the ordering argument at the definition). */
    void closeNotify(Session *s);

    void workerLoop();

    /** Drain and verify everything available for @p s (one worker);
     *  re-arms / retires the transport under the session lock. */
    void service(Session *s);

    /** Re-register @p s's fd (EPOLLONESHOT) for the next readiness
     *  event. Requires s->work; no-op for unwatched sessions. */
    void rearm(Session *s, Transport *t);

    /** Tear the transport down once the stream is over and the prover
     *  has published its close (@p proverGone — load it before
     *  draining so close-side state is visible). Requires s->work.
     *  @return true when the transport was released. */
    bool maybeRetire(Session *s, Transport *t, bool proverGone);

    /** Verdict rendered: snapshot the report, release big state. */
    void finishSession(Session *s, Transport *t);

    /** Count @p s toward drain() once it is both closed and done. */
    void countDrained(Session *s);

    // Sessions are append-only; the vector grows under sessionsLock_
    // and the unique_ptr elements give workers stable addresses.
    std::vector<std::unique_ptr<Session>> sessions_;
    mutable std::mutex sessionsLock_;
    std::atomic<u64> opened_{0};

    // Doorbell ready queue (in-memory transports only).
    std::deque<Session *> ready_;
    std::mutex readyLock_;
    std::condition_variable readyCv_; ///< fallback hosts only

    std::atomic<u64> closed_{0};
    std::atomic<u64> drained_{0}; ///< sessions both closed and done
    std::atomic<u64> adjudicated_{0};
    std::condition_variable doneCv_; ///< signaled on session completion
    mutable std::mutex doneLock_;

    std::atomic<bool> stop_{false};
    std::vector<std::thread> workers_;

    std::unique_ptr<VerifiedUnitCache> cache_;

    // Event loop (epoll hosts): all workers share one epoll set; the
    // doorbell eventfd carries ring-session readiness, the stop eventfd
    // fans shutdown out to every worker.
    int epollFd_ = -1;
    int doorbellFd_ = -1;
    int stopFd_ = -1;
    bool epollMode_ = false;
};

} // namespace rev::verifier

#endif // REV_VERIFIER_SERVICE_HPP
