#include "verifier/unit_cache.hpp"

#include <algorithm>
#include <cstring>

namespace rev::verifier
{

namespace
{

/** One word of splitmix-style avalanche; the fold path hashes ~2.4M
 *  keys per 1000-session run, so this must be a handful of ALU ops per
 *  word, not a byte loop. */
inline u64
mix(u64 h, u64 v)
{
    h ^= v;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return h;
}

std::size_t
roundUpPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

std::size_t
VerifiedUnitCache::KeyHash::operator()(const Key &k) const
{
    u64 h = 0x243f6a8885a308d3ULL;
    h = mix(h, k.kind);
    h = mix(h, reinterpret_cast<std::uintptr_t>(k.ns));
    u64 w[4];
    static_assert(sizeof(k.chain) == sizeof(w));
    std::memcpy(w, k.chain.data(), sizeof(w));
    for (const u64 v : w)
        h = mix(h, v);
    h = mix(h, k.a);
    h = mix(h, k.b);
    h = mix(h, k.c);
    h = mix(h, (static_cast<u64>(k.d) << 32) | k.e);
    return static_cast<std::size_t>(h);
}

VerifiedUnitCache::VerifiedUnitCache(std::size_t maxEntries,
                                     std::size_t shards)
    : shards_(roundUpPow2(std::max<std::size_t>(1, shards)))
{
    shardMask_ = shards_.size() - 1;
    perShardCap_ = std::max<std::size_t>(1, maxEntries / shards_.size());
}

VerifiedUnitCache::Shard &
VerifiedUnitCache::shardFor(std::size_t keyHash) const
{
    return shards_[keyHash & shardMask_];
}

void
VerifiedUnitCache::insert(const Key &k, std::size_t keyHash, Value &&v)
{
    Shard &s = shardFor(keyHash);
    std::lock_guard<std::mutex> lock(s.lock);
    // Two sessions can race the same miss; first insert wins and the
    // duplicate (bit-identical by purity) is dropped.
    const auto [it, inserted] = s.map.emplace(k, std::move(v));
    (void)it;
    if (!inserted)
        return;
    s.fifo.push_back(k);
    while (s.map.size() > perShardCap_) {
        s.map.erase(s.fifo.front());
        s.fifo.pop_front();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

bool
VerifiedUnitCache::lookupUnit(const validate::RefStore *ns, Addr term,
                              u32 key, sig::LookupResult *out) const
{
    Key k;
    k.kind = 0;
    k.ns = ns;
    k.a = term;
    k.d = key;
    const std::size_t h = KeyHash{}(k);
    Shard &s = shardFor(h);
    {
        std::lock_guard<std::mutex> lock(s.lock);
        const auto it = s.map.find(k);
        if (it != s.map.end()) {
            *out = it->second.unit; // one copy, straight off the entry
            hits_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
VerifiedUnitCache::insertUnit(const validate::RefStore *ns, Addr term,
                              u32 key, const sig::LookupResult &val)
{
    Key k;
    k.kind = 0;
    k.ns = ns;
    k.a = term;
    k.d = key;
    Value v;
    v.unit = val;
    insert(k, KeyHash{}(k), std::move(v));
}

bool
VerifiedUnitCache::lookupFold(const crypto::Digest &chain, const FoldKey &key,
                              crypto::Digest *out) const
{
    Key k;
    k.kind = 1;
    k.chain = chain;
    k.a = key.start;
    k.b = key.term;
    k.c = key.target;
    k.d = key.codeDigest;
    k.e = key.hashRounds;
    const std::size_t h = KeyHash{}(k);
    Shard &s = shardFor(h);
    {
        std::lock_guard<std::mutex> lock(s.lock);
        const auto it = s.map.find(k);
        if (it != s.map.end()) {
            *out = it->second.fold; // 32 bytes; skip the Value copy
            hits_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
VerifiedUnitCache::insertFold(const crypto::Digest &chain, const FoldKey &key,
                              const crypto::Digest &next)
{
    Key k;
    k.kind = 1;
    k.chain = chain;
    k.a = key.start;
    k.b = key.term;
    k.c = key.target;
    k.d = key.codeDigest;
    k.e = key.hashRounds;
    Value v;
    v.fold = next;
    insert(k, KeyHash{}(k), std::move(v));
}

UnitCacheStats
VerifiedUnitCache::stats() const
{
    UnitCacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    for (const Shard &s : shards_) {
        std::lock_guard<std::mutex> lock(s.lock);
        out.entries += s.map.size();
    }
    return out;
}

} // namespace rev::verifier
