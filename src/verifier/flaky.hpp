/**
 * @file
 * FlakyTransport: a fault-injecting Transport decorator for the
 * verifier's soak / fault-injection battery (tests/verifier).
 *
 * Wraps any inner Transport and injects, under a seeded RNG:
 *  - short writes: send() passes only a random prefix to the inner
 *    transport, so the prover's retry loop and the service's partial-
 *    record reassembly both get exercised at every byte boundary;
 *  - torn reads: recv() caps the worker's read at a few bytes, tearing
 *    records (and, over sockets, frames) across service() calls;
 *  - mid-record disconnects: after a configured number of payload
 *    bytes, the stream is cut — the inner transport is closed and the
 *    remainder silently dropped, exactly like a prover dying mid-frame.
 *
 * The decorator never reorders or corrupts bytes: everything it lets
 * through is a prefix of the true stream, so the expected verdict is
 * either the clean-run verdict (nothing dropped) or an honest
 * truncation — which is what the fault battery pins.
 *
 * Thread contract: send-side state is touched only by the prover
 * thread, recv-side state only by the worker holding the session (two
 * separate RNGs, no sharing).
 */

#ifndef REV_VERIFIER_FLAKY_HPP
#define REV_VERIFIER_FLAKY_HPP

#include <algorithm>
#include <memory>

#include "common/random.hpp"
#include "verifier/transport.hpp"

namespace rev::verifier
{

/** Fault-injection knobs (probabilities in [0,1]). */
struct FlakyOptions
{
    u64 seed = 1;
    double shortWriteProb = 0.25; ///< send() forwards a random prefix
    double tornReadProb = 0.25;   ///< recv() returns a 1..8-byte sliver
    u64 disconnectAfterBytes = 0; ///< >0: cut the stream at this offset
};

/** Fault-injecting decorator over any Transport. */
class FlakyTransport final : public Transport
{
  public:
    FlakyTransport(std::unique_ptr<Transport> inner, const FlakyOptions &opts)
        : inner_(std::move(inner)), opts_(opts), sendRng_(opts.seed),
          recvRng_(opts.seed ^ 0x5eed5eed5eed5eedULL)
    {
    }

    std::size_t
    send(const u8 *data, std::size_t n) override
    {
        if (disconnected_)
            return n; // the peer is gone; swallow so the prover finishes
        std::size_t cap = n;
        if (opts_.disconnectAfterBytes != 0) {
            const u64 left = opts_.disconnectAfterBytes - sentBytes_;
            if (left == 0) {
                disconnect();
                return n;
            }
            cap = std::min<std::size_t>(cap, static_cast<std::size_t>(left));
        }
        if (cap > 1 && sendRng_.chance(opts_.shortWriteProb))
            cap = 1 + static_cast<std::size_t>(sendRng_.below(cap));
        const std::size_t accepted = inner_->send(data, cap);
        sentBytes_ += accepted;
        if (opts_.disconnectAfterBytes != 0 &&
            sentBytes_ >= opts_.disconnectAfterBytes) {
            disconnect();
            return n; // the cut consumed the record mid-byte: swallow
        }
        return accepted;
    }

    void
    closeSend() override
    {
        if (!disconnected_)
            inner_->closeSend();
    }

    std::size_t
    recv(u8 *out, std::size_t max) override
    {
        std::size_t cap = max;
        if (cap > 1 && recvRng_.chance(opts_.tornReadProb))
            cap = 1 + static_cast<std::size_t>(recvRng_.below(8));
        return inner_->recv(out, std::min(cap, max));
    }

    std::size_t readable() const override { return inner_->readable(); }
    bool finished() const override { return inner_->finished(); }
    bool corrupt() const override { return inner_->corrupt(); }
    std::size_t peakBytes() const override { return inner_->peakBytes(); }
    int watchFd() const override { return inner_->watchFd(); }

    u64 bytesDelivered() const { return sentBytes_; }
    bool disconnected() const { return disconnected_; }

  private:
    void
    disconnect()
    {
        disconnected_ = true;
        inner_->closeSend();
    }

    std::unique_ptr<Transport> inner_;
    const FlakyOptions opts_;
    Rng sendRng_;  ///< prover-thread state
    Rng recvRng_;  ///< worker-thread state (serialized by the session)
    u64 sentBytes_ = 0;
    bool disconnected_ = false;
};

} // namespace rev::verifier

#endif // REV_VERIFIER_FLAKY_HPP
