/**
 * @file
 * VerifiedUnitCache: the service-wide, sharded cross-session dedup
 * cache behind validate::UnitLookupCache.
 *
 * One instance is shared by every session of a VerifierService. Two
 * key spaces live side by side in the same sharded store:
 *
 *  - unit entries, keyed (RefStore*, term, digest) -> LookupResult:
 *    the decrypt-and-walk result REV sessions pay per static
 *    validation unit;
 *  - fold entries, keyed (chain, start, term, target, digest, rounds)
 *    -> next chain: one LO-FAT measurement-chain link.
 *
 * Sharding: keys hash onto a fixed power-of-two shard array, one mutex
 * + map + FIFO per shard, so sessions on different workers contend on
 * 1/N of the lock space. Capacity is bounded per shard; insertion
 * beyond the bound evicts in FIFO order (the hit/miss/eviction
 * counters surface through the service into BENCH_verifier.json).
 *
 * Correctness: values are pure functions of their keys (the RefStore
 * pointer namespaces different attested programs), so a hit is
 * bit-identical to the computation it replaces and dedup on/off can
 * never move a verdict — tests/verifier/unit_cache_test.cpp pins this,
 * and the TSan job hammers the shards concurrently.
 */

#ifndef REV_VERIFIER_UNIT_CACHE_HPP
#define REV_VERIFIER_UNIT_CACHE_HPP

#include <atomic>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "validate/stream_verifier.hpp"

namespace rev::verifier
{

/** Aggregate counters of one cache (monotonic over its lifetime). */
struct UnitCacheStats
{
    u64 hits = 0;
    u64 misses = 0; ///< failed lookups (== inserts sans duplicates)
    u64 evictions = 0;
    u64 entries = 0; ///< currently resident (units + folds)
};

/** Sharded, bounded, thread-safe verified-unit cache. */
class VerifiedUnitCache final : public validate::UnitLookupCache
{
  public:
    /**
     * @param maxEntries Total capacity (units + folds) across shards.
     * @param shards     Shard count; rounded up to a power of two.
     */
    explicit VerifiedUnitCache(std::size_t maxEntries,
                               std::size_t shards = 16);

    bool lookupUnit(const validate::RefStore *ns, Addr term, u32 key,
                    sig::LookupResult *out) const override;
    void insertUnit(const validate::RefStore *ns, Addr term, u32 key,
                    const sig::LookupResult &val) override;

    bool lookupFold(const crypto::Digest &chain, const FoldKey &key,
                    crypto::Digest *out) const override;
    void insertFold(const crypto::Digest &chain, const FoldKey &key,
                    const crypto::Digest &next) override;

    UnitCacheStats stats() const;

  private:
    /** Uniform key for both entry kinds. kind disambiguates; fold keys
     *  carry the chain digest, unit keys the RefStore pointer. */
    struct Key
    {
        u8 kind = 0; ///< 0 = unit, 1 = fold
        const void *ns = nullptr;
        crypto::Digest chain{};
        Addr a = 0, b = 0, c = 0;
        u32 d = 0, e = 0;

        bool operator==(const Key &) const = default;
    };

    struct KeyHash
    {
        std::size_t operator()(const Key &k) const;
    };

    struct Value
    {
        sig::LookupResult unit;
        crypto::Digest fold{};
    };

    struct Shard
    {
        mutable std::mutex lock;
        std::unordered_map<Key, Value, KeyHash> map;
        std::deque<Key> fifo; ///< insertion order, drives eviction
    };

    void insert(const Key &k, std::size_t keyHash, Value &&v);

    Shard &shardFor(std::size_t keyHash) const;

    mutable std::vector<Shard> shards_;
    std::size_t shardMask_ = 0;
    std::size_t perShardCap_ = 0;

    mutable std::atomic<u64> hits_{0};
    mutable std::atomic<u64> misses_{0};
    std::atomic<u64> evictions_{0};
};

} // namespace rev::verifier

#endif // REV_VERIFIER_UNIT_CACHE_HPP
