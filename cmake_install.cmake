# Install script for directory: /root/repo

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "Release")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/src/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/tests/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/bench/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/examples/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/tools/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/common/librev_common.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/crypto/librev_crypto.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/isa/librev_isa.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/program/librev_program.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/sig/librev_sig.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/mem/librev_mem.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/validate/librev_validate.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/cpu/librev_cpu.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/core/librev_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/attacks/librev_attacks.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/src/workloads/librev_workloads.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/revsim" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/revsim")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/revsim"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/tools/revsim")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/revsim" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/revsim")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/revsim")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/sigtool" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/sigtool")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/sigtool"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/tools/sigtool")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/sigtool" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/sigtool")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/sigtool")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/rev" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/rev/revTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/rev/revTargets.cmake"
         "/root/repo/CMakeFiles/Export/d234e537e0cc981ce3e7a5034ebe72fa/revTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/rev/revTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/rev/revTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/rev" TYPE FILE FILES "/root/repo/CMakeFiles/Export/d234e537e0cc981ce3e7a5034ebe72fa/revTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ee][Aa][Ss][Ee])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/rev" TYPE FILE FILES "/root/repo/CMakeFiles/Export/d234e537e0cc981ce3e7a5034ebe72fa/revTargets-release.cmake")
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/rev" TYPE FILE FILES "/root/repo/revConfig.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT)
  set(CMAKE_INSTALL_MANIFEST "install_manifest_${CMAKE_INSTALL_COMPONENT}.txt")
else()
  set(CMAKE_INSTALL_MANIFEST "install_manifest.txt")
endif()

string(REPLACE ";" "\n" CMAKE_INSTALL_MANIFEST_CONTENT
       "${CMAKE_INSTALL_MANIFEST_FILES}")
file(WRITE "/root/repo/${CMAKE_INSTALL_MANIFEST}"
     "${CMAKE_INSTALL_MANIFEST_CONTENT}")
