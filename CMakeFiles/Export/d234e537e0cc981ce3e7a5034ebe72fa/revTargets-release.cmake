#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "rev::rev_common" for configuration "Release"
set_property(TARGET rev::rev_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(rev::rev_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librev_common.a"
  )

list(APPEND _cmake_import_check_targets rev::rev_common )
list(APPEND _cmake_import_check_files_for_rev::rev_common "${_IMPORT_PREFIX}/lib/librev_common.a" )

# Import target "rev::rev_crypto" for configuration "Release"
set_property(TARGET rev::rev_crypto APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(rev::rev_crypto PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librev_crypto.a"
  )

list(APPEND _cmake_import_check_targets rev::rev_crypto )
list(APPEND _cmake_import_check_files_for_rev::rev_crypto "${_IMPORT_PREFIX}/lib/librev_crypto.a" )

# Import target "rev::rev_isa" for configuration "Release"
set_property(TARGET rev::rev_isa APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(rev::rev_isa PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librev_isa.a"
  )

list(APPEND _cmake_import_check_targets rev::rev_isa )
list(APPEND _cmake_import_check_files_for_rev::rev_isa "${_IMPORT_PREFIX}/lib/librev_isa.a" )

# Import target "rev::rev_program" for configuration "Release"
set_property(TARGET rev::rev_program APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(rev::rev_program PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librev_program.a"
  )

list(APPEND _cmake_import_check_targets rev::rev_program )
list(APPEND _cmake_import_check_files_for_rev::rev_program "${_IMPORT_PREFIX}/lib/librev_program.a" )

# Import target "rev::rev_sig" for configuration "Release"
set_property(TARGET rev::rev_sig APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(rev::rev_sig PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librev_sig.a"
  )

list(APPEND _cmake_import_check_targets rev::rev_sig )
list(APPEND _cmake_import_check_files_for_rev::rev_sig "${_IMPORT_PREFIX}/lib/librev_sig.a" )

# Import target "rev::rev_mem" for configuration "Release"
set_property(TARGET rev::rev_mem APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(rev::rev_mem PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librev_mem.a"
  )

list(APPEND _cmake_import_check_targets rev::rev_mem )
list(APPEND _cmake_import_check_files_for_rev::rev_mem "${_IMPORT_PREFIX}/lib/librev_mem.a" )

# Import target "rev::rev_validate" for configuration "Release"
set_property(TARGET rev::rev_validate APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(rev::rev_validate PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librev_validate.a"
  )

list(APPEND _cmake_import_check_targets rev::rev_validate )
list(APPEND _cmake_import_check_files_for_rev::rev_validate "${_IMPORT_PREFIX}/lib/librev_validate.a" )

# Import target "rev::rev_cpu" for configuration "Release"
set_property(TARGET rev::rev_cpu APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(rev::rev_cpu PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librev_cpu.a"
  )

list(APPEND _cmake_import_check_targets rev::rev_cpu )
list(APPEND _cmake_import_check_files_for_rev::rev_cpu "${_IMPORT_PREFIX}/lib/librev_cpu.a" )

# Import target "rev::rev_core" for configuration "Release"
set_property(TARGET rev::rev_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(rev::rev_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librev_core.a"
  )

list(APPEND _cmake_import_check_targets rev::rev_core )
list(APPEND _cmake_import_check_files_for_rev::rev_core "${_IMPORT_PREFIX}/lib/librev_core.a" )

# Import target "rev::rev_attacks" for configuration "Release"
set_property(TARGET rev::rev_attacks APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(rev::rev_attacks PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librev_attacks.a"
  )

list(APPEND _cmake_import_check_targets rev::rev_attacks )
list(APPEND _cmake_import_check_files_for_rev::rev_attacks "${_IMPORT_PREFIX}/lib/librev_attacks.a" )

# Import target "rev::rev_workloads" for configuration "Release"
set_property(TARGET rev::rev_workloads APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(rev::rev_workloads PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/librev_workloads.a"
  )

list(APPEND _cmake_import_check_targets rev::rev_workloads )
list(APPEND _cmake_import_check_files_for_rev::rev_workloads "${_IMPORT_PREFIX}/lib/librev_workloads.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
